// Package service exposes the repository's planning, analysis, and
// simulation engines as a concurrent HTTP JSON API with a production
// hot path: canonical request hashing feeding a bounded LRU result
// cache, singleflight coalescing of identical in-flight requests, a
// bounded worker pool for engine fan-out, per-request deadlines, and
// expvar-based observability.
//
// Every endpoint's result is a pure function of its canonicalized
// request — randomness is always seeded from request fields — so the
// cache needs no invalidation and coalescing is semantically invisible.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/clocksim"
	"repro/internal/cluster"
	"repro/internal/hybrid"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/skew"
)

// Config parameterizes a Server. The zero value is usable: NewServer
// fills in the defaults documented on each field.
type Config struct {
	// CacheEntries bounds the result cache. Default 1024.
	CacheEntries int
	// KernelCacheEntries bounds the skew-kernel cache: precomputed
	// (graph, tree) geometry shared across requests that differ only in
	// model, trial count, or seed. Default 256.
	KernelCacheEntries int
	// KernelLimits bounds the size of any one skew kernel the server
	// will build. An oversize request is answered with HTTP 413 and
	// reason "array_too_large" instead of index corruption or an OOM
	// kill. Zero fields take skew.DefaultLimits.
	KernelLimits skew.Limits
	// NoStreamedFallback disables the streamed-analysis fallback:
	// analyze requests whose kernel would exceed KernelLimits answer 413
	// array_too_large instead of transparently switching to the
	// bounded-memory streamed path. Default: fallback enabled.
	NoStreamedFallback bool
	// StreamShardSize is the pair-block size of the streamed path's
	// shards. <= 0 takes skew.DefaultShardSize.
	StreamShardSize int64
	// StreamPeerShards, in cluster mode, lets the streamed path spill
	// shards to their ring-owning peers over /v1/cluster/shard instead of
	// computing every shard locally. Default: off (shards stay local).
	StreamPeerShards bool
	// Workers bounds each request's engine fan-out (candidate trees,
	// Monte-Carlo trials, simulation trials, batch configs). Default
	// GOMAXPROCS.
	Workers int
	// MaxBatchConfigs bounds the configs array of one batched simulate
	// request. Default 64.
	MaxBatchConfigs int
	// DefaultDeadline applies when a request carries no timeout_ms.
	// Default 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-supplied timeouts. Default 2m.
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// LogWriter receives one structured JSON log line per request.
	// Default: logging disabled.
	LogWriter io.Writer
	// Tracer, when set, records one span per request (plus the engine
	// spans underneath it) into the given tracer. Default: the server
	// still runs a non-retaining tracer to feed the flight recorder, so
	// per-request spans exist but accumulate nowhere except its bounded
	// ring (set DisableFlight too for zero per-request cost).
	Tracer *obs.Tracer
	// FlightSpans bounds the flight recorder's span ring. <= 0 takes
	// obs.DefaultFlightSpans.
	FlightSpans int
	// FlightSlow is the threshold above which a completed request's full
	// span tree is captured for post-hoc diagnosis. <= 0 takes
	// obs.DefaultFlightSlow.
	FlightSlow time.Duration
	// DisableFlight turns the always-on flight recorder off.
	DisableFlight bool
	// Cluster, when set, joins this server to a static peer group:
	// requests are routed on a consistent-hash ring over content-
	// addressed keys, forwarded to their owning node with hedging, and
	// peer-computed results fill the local cache. Only honored by
	// NewClusterServer; nil keeps single-node behavior byte-identical.
	Cluster *ClusterConfig
	// DisableJobs turns off the async /v1/jobs API. Default: enabled.
	DisableJobs bool
	// Jobs parameterizes the async job manager (zero fields take the
	// jobs package defaults).
	Jobs jobs.Config
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.KernelCacheEntries == 0 {
		c.KernelCacheEntries = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchConfigs <= 0 {
		c.MaxBatchConfigs = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// response is a finished endpoint result, the unit stored in the cache
// and shared between coalesced callers.
type response struct {
	status      int
	contentType string
	body        []byte
}

func jsonResponse(body []byte) response {
	return response{status: 200, contentType: "application/json", body: body}
}

// marshalResponse encodes v as the indented JSON body of a 200.
func marshalResponse(v any) (response, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return response{}, fmt.Errorf("service: encoding response: %w", err)
	}
	return jsonResponse(append(b, '\n')), nil
}

// Server is the syncd HTTP handler. Construct with NewServer; it is
// safe for concurrent use and carries no global state, so tests can run
// many side by side.
type Server struct {
	cfg     Config
	cache   *lru[response]
	kernels *lru[*skew.Kernel]
	// streamers caches the streamed path's per-(graph, tree recipe)
	// precomputation — the CSR pair index plus a compact tree, ~8 B/pair
	// against the kernel's ~40 — under the same content addressing as
	// kernels but a distinct prefix.
	streamers *lru[*skew.Streamer]
	// simKernels and hybridSystems are the simulation engines' analogue
	// of the skew-kernel cache: immutable per-(graph, recipe)
	// precomputations reused across regimes, seeds, trial counts, and
	// batch sweeps. One batched simulate over a fresh topology builds
	// each at most once.
	simKernels    *lru[*clocksim.Kernel]
	hybridSystems *lru[*hybrid.System]
	flight        *flightGroup
	metrics       *metrics
	mux           *http.ServeMux
	logger        *log.Logger
	nextReq       atomic.Int64 // request-ID counter

	// tracer is the effective tracer every request context carries:
	// cfg.Tracer when set, otherwise a non-retaining tracer that exists
	// only to feed the flight recorder. Nil only with DisableFlight and
	// no cfg.Tracer.
	tracer *obs.Tracer
	// recorder is the always-on flight recorder behind
	// GET /debug/flightrecorder (nil with DisableFlight).
	recorder *obs.FlightRecorder

	// cluster is non-nil only for servers built with NewClusterServer;
	// every nil check below is the single-node fast path.
	cluster *clusterState
	// jobs is the async job manager behind /v1/jobs (nil when disabled).
	jobs *jobs.Manager

	// computeGate, when set (tests only), is called at the start of
	// every cache-miss computation. Tests use it as a barrier to hold
	// computations open while concurrent identical requests pile up.
	computeGate func(endpoint string)
}

// NewServer builds a Server with cfg (zero fields defaulted).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:           cfg,
		cache:         newLRU[response](cfg.CacheEntries),
		kernels:       newLRU[*skew.Kernel](cfg.KernelCacheEntries),
		streamers:     newLRU[*skew.Streamer](cfg.KernelCacheEntries),
		simKernels:    newLRU[*clocksim.Kernel](cfg.KernelCacheEntries),
		hybridSystems: newLRU[*hybrid.System](cfg.KernelCacheEntries),
		flight:        newFlightGroup(),
		metrics:       newMetrics(),
		mux:           http.NewServeMux(),
	}
	if cfg.LogWriter != nil {
		s.logger = log.New(cfg.LogWriter, "", 0)
	}
	s.metrics.registerKernelBytes(s.kernelBytesInUse)
	s.tracer = cfg.Tracer
	if !cfg.DisableFlight {
		s.recorder = obs.NewFlightRecorder(cfg.FlightSpans, cfg.FlightSlow)
		if s.tracer == nil {
			// Always-on mode: spans exist for the recorder's ring but are
			// not retained for export, keeping memory bounded forever.
			s.tracer = obs.NewTracer()
			s.tracer.SetRetain(false)
		}
		s.tracer.SetFlight(s.recorder)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("/v1/plan", post(decoded(s, "plan", func(r *PlanRequest) { r.applyDefaults() }, timeoutOfPlan, s.computePlan)))
	s.mux.HandleFunc("/v1/analyze", post(decoded(s, "analyze", func(r *AnalyzeRequest) { r.applyDefaults() }, timeoutOfAnalyze, s.computeAnalyze)))
	s.mux.HandleFunc("/v1/simulate", post(decoded(s, "simulate", func(r *SimulateRequest) { r.applyDefaults() }, timeoutOfSimulate, s.computeSimulate)))
	s.mux.HandleFunc("/v1/layout.svg", s.handleLayout)
	if !cfg.DisableJobs {
		s.jobs = jobs.NewManager(cfg.Jobs)
		s.metrics.registerJobs(s.jobs)
		s.mux.HandleFunc("/v1/jobs", s.handleJobs)
		s.mux.HandleFunc("/v1/jobs/{id}", s.handleJob)
		s.mux.HandleFunc("/v1/jobs/{id}/stream", s.handleJobStream)
	}
	return s
}

// NewClusterServer builds a Server joined to the peer group described by
// cfg.Cluster (which must be non-nil). The returned server additionally
// serves /v1/cluster/info and /v1/cluster/fill, and routes cacheable
// requests across the ring.
func NewClusterServer(cfg Config) (*Server, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("service: NewClusterServer needs Config.Cluster")
	}
	s := NewServer(cfg)
	cs, err := newClusterState(*cfg.Cluster)
	if err != nil {
		return nil, err
	}
	s.cluster = cs
	s.mux.HandleFunc("/v1/cluster/info", s.handleClusterInfo)
	s.mux.HandleFunc("/v1/cluster/fill", s.handleClusterFill)
	s.mux.HandleFunc("/v1/cluster/shard", s.handleClusterShard)
	return s, nil
}

// Close releases the server's background resources: the cluster health
// probe loop and the job manager (cancelling any running jobs). The
// HTTP handler itself holds no connections and needs no other shutdown.
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.stop()
	}
	if s.jobs != nil {
		s.jobs.Close()
	}
}

// requestIDKey carries the request's ID through its context.
type requestIDKey struct{}

// requestIDFrom returns the request ID assigned in ServeHTTP ("" for
// contexts that never passed through it, e.g. direct handler tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ServeHTTP implements http.Handler. Every request is assigned an ID —
// the client's X-Request-ID when present, otherwise a process-unique
// counter value — echoed in the response's X-Request-ID header and
// attached to the request's log line and span.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = "syncd-" + strconv.FormatInt(s.nextReq.Add(1), 10)
	}
	w.Header().Set("X-Request-ID", id)
	ctx := context.WithValue(r.Context(), requestIDKey{}, id)
	ctx = obs.WithTracer(ctx, s.tracer)
	// A forwarded/hedged/drained request carries the sender's span
	// identity; adopting it parents this node's spans under the remote
	// span so merged traces read as one causal story.
	if v := r.Header.Get(obs.TraceHeader); v != "" {
		if sc, err := obs.ParseSpanContext(v); err == nil {
			ctx = obs.WithRemoteParent(ctx, sc)
		}
	}
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// FlightRecorder returns the server's always-on flight recorder (nil
// when disabled), for manifest snapshots at shutdown.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.recorder }

// handleFlightRecorder serves GET /debug/flightrecorder: the recorder's
// recent-span ring and slow/error captures. Query parameters narrow the
// span list: ?trace_id=… to one trace, ?attr=key=value (e.g.
// attr=request_id=abc) to spans carrying that attribute.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET", ReasonMethodNotAllowed)
		return
	}
	if s.recorder == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled", ReasonBadRequest)
		return
	}
	snap := s.recorder.Snapshot(r.URL.Query().Get("trace_id"), r.URL.Query().Get("attr"))
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("encoding snapshot: %v", err), ReasonInternal)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_s\":%.1f}\n", time.Since(s.metrics.start).Seconds())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(s.promSnapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.metrics.snapshot())
}

func timeoutOfPlan(r *PlanRequest) int64         { return r.TimeoutMS }
func timeoutOfAnalyze(r *AnalyzeRequest) int64   { return r.TimeoutMS }
func timeoutOfSimulate(r *SimulateRequest) int64 { return r.TimeoutMS }

// post restricts a handler to the POST method.
func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "method not allowed; use POST", ReasonMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// forwardSpec is everything serveKeyed needs to relay a request to its
// owning peer: the ring routing key (a kernel-affinity key when the
// endpoint has one, so every request sharing a kernel lands on the same
// node) and the raw request to replay.
type forwardSpec struct {
	routeKey string
	method   string
	path     string
	body     []byte
}

// affinityKeyer lets a request type override the ring routing key with
// the content address of the kernel it will need, instead of its full
// result key. Routing on kernel affinity is what makes each distinct
// kernel build happen exactly once cluster-wide.
type affinityKeyer interface {
	affinityKey() (string, bool)
}

// decoded adapts one typed compute function into the shared serving
// flow: decode body → apply defaults → canonicalize → hash → cache →
// singleflight → compute with deadline → record → respond.
func decoded[R any](s *Server, endpoint string, defaults func(*R), timeoutMS func(*R) int64, compute func(context.Context, *R) (response, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req R
		// The body is read fully (rather than streamed into the decoder)
		// so cluster mode can replay the identical bytes to a peer.
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.finish(w, r, endpoint, time.Now(), nil, response{}, badRequest("decoding request: %v", err), "")
			return
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			s.finish(w, r, endpoint, time.Now(), nil, response{}, badRequest("decoding request: %v", err), "")
			return
		}
		defaults(&req)
		canonical, err := canonicalize(&req)
		if err != nil {
			s.finish(w, r, endpoint, time.Now(), nil, response{}, err, "")
			return
		}
		key := cacheKey(endpoint, canonical)
		var fwd *forwardSpec
		if s.cluster != nil {
			fwd = &forwardSpec{routeKey: key, method: http.MethodPost, path: r.URL.Path, body: raw}
			if ak, ok := any(&req).(affinityKeyer); ok {
				if rk, ok := ak.affinityKey(); ok {
					fwd.routeKey = rk
				}
			}
		}
		s.serveKeyed(w, r, endpoint, key, timeoutMS(&req), fwd, func(ctx context.Context) (response, error) {
			return compute(ctx, &req)
		})
	}
}

// serveKeyed is the shared hot path behind every cacheable endpoint.
// With tracing enabled it records a "serve.<endpoint>" span covering the
// whole request; the compute's engine spans nest underneath, and a
// coalesced follower's span names the leader request whose computation
// it shared.
func (s *Server) serveKeyed(w http.ResponseWriter, r *http.Request, endpoint, key string, timeoutMS int64, fwd *forwardSpec, compute func(context.Context) (response, error)) {
	start := time.Now()
	reqID := requestIDFrom(r.Context())
	rctx, span := obs.Start(r.Context(), "serve."+endpoint, obs.String("request_id", reqID))
	defer span.End()
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	if res, ok := s.cache.Get(key); ok {
		s.metrics.hits.Add(1)
		span.Annotate(obs.String("cache", "hit"))
		s.finish(w, r, endpoint, start, span, res, nil, "hit")
		return
	}

	deadline := s.cfg.DefaultDeadline
	if timeoutMS > 0 {
		deadline = time.Duration(timeoutMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(rctx, deadline)
	defer cancel()

	// Cluster routing, after the local cache and before any computation:
	// a request owned by a peer is forwarded (with hedging) and its 200
	// fills the local cache, so each distinct key computes on exactly one
	// node. Requests already forwarded once always serve locally — the
	// ForwardedHeader guard is what bounds relaying at one hop.
	if s.cluster != nil && fwd != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
		if targets := s.cluster.targets(fwd.routeKey); len(targets) > 0 {
			s.serveForwarded(ctx, w, r, endpoint, key, start, span, fwd, targets)
			return
		}
	}

	res, err, coalesced, leader := s.flight.Do(ctx, key, reqID, func() (response, error) {
		if s.computeGate != nil {
			s.computeGate(endpoint)
		}
		s.metrics.computes.Add(1)
		res, err := compute(ctx)
		if err == nil {
			s.cache.Put(key, res)
		}
		return res, err
	})
	cacheState := "miss"
	if coalesced {
		cacheState = "coalesced"
		s.metrics.coalesced.Add(1)
		span.Annotate(obs.String("leader", leader))
	} else {
		s.metrics.misses.Add(1)
	}
	span.Annotate(obs.String("cache", cacheState))
	s.finish(w, r, endpoint, start, span, res, err, cacheState)
}

// handleLayout serves GET /v1/layout.svg, translating query parameters
// into a LayoutRequest so layouts share the content-addressed cache.
func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET", ReasonMethodNotAllowed)
		return
	}
	req, err := layoutRequestFromQuery(r)
	if err != nil {
		s.finish(w, r, "layout", time.Now(), nil, response{}, err, "")
		return
	}
	canonical, err := canonicalize(req)
	if err != nil {
		s.finish(w, r, "layout", time.Now(), nil, response{}, err, "")
		return
	}
	key := cacheKey("layout", canonical)
	// Layouts stay local in cluster mode: they build no kernel, so there
	// is no affinity to exploit and nothing worth a network hop.
	s.serveKeyed(w, r, "layout", key, 0, nil, func(ctx context.Context) (response, error) {
		return s.computeLayout(ctx, req)
	})
}

func layoutRequestFromQuery(r *http.Request) (*LayoutRequest, error) {
	q := r.URL.Query()
	req := &LayoutRequest{
		Topology: TopologySpec{Kind: q.Get("kind")},
		Tree:     q.Get("tree"),
		Caption:  q.Get("caption"),
	}
	if req.Topology.Kind == "" {
		return nil, badRequest("layout needs a kind query parameter (linear, ring, mesh, hex, torus, tree)")
	}
	for name, dst := range map[string]*int{"n": &req.Topology.N, "rows": &req.Topology.Rows, "cols": &req.Topology.Cols} {
		if v := q.Get(name); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil {
				return nil, badRequest("query parameter %s: %v", name, err)
			}
			*dst = i
		}
	}
	for name, dst := range map[string]*bool{"equalize": &req.Equalize, "hybrid": &req.Hybrid} {
		if v := q.Get(name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, badRequest("query parameter %s: %v", name, err)
			}
			*dst = b
		}
	}
	for name, dst := range map[string]*float64{"spacing": &req.Spacing, "element_size": &req.ElementSize} {
		if v := q.Get(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, badRequest("query parameter %s: %v", name, err)
			}
			*dst = f
		}
	}
	return req, nil
}

// finish maps a compute result onto the wire, records metrics (summary
// and histogram, the latter with the span's trace ID as its exemplar),
// and emits the structured log line. span may be nil (decode-stage
// failures that never reached the serving flow).
func (s *Server) finish(w http.ResponseWriter, r *http.Request, endpoint string, start time.Time, span *obs.Span, res response, err error, cacheState string) {
	s.metrics.requests.Add(1)
	status := res.status
	if err != nil {
		status = statusOf(err)
		res = errorResponse(status, err.Error(), reasonOf(err))
	}
	if status >= 400 {
		s.metrics.errors.Add(1)
	}
	elapsed := time.Since(start)
	ms := float64(elapsed.Nanoseconds()) / 1e6
	s.metrics.latency(endpoint).Observe(ms)
	s.metrics.requestHist(endpoint).Observe(ms, span.TraceID())
	span.Annotate(obs.Int("http_status", int64(status)))
	if err != nil {
		// The "error" attr is also the flight recorder's capture trigger:
		// a failed request's span tree is retained even when fast.
		span.Annotate(obs.String("error", reasonOf(err)))
	}

	w.Header().Set("Content-Type", res.contentType)
	if cacheState != "" {
		w.Header().Set("X-Cache", cacheState)
	}
	w.WriteHeader(status)
	w.Write(res.body)

	if s.logger != nil {
		line, _ := json.Marshal(map[string]any{
			"time":        start.UTC().Format(time.RFC3339Nano),
			"request_id":  requestIDFrom(r.Context()),
			"endpoint":    endpoint,
			"method":      r.Method,
			"path":        r.URL.Path,
			"status":      status,
			"cache":       cacheState,
			"duration_ms": float64(elapsed.Nanoseconds()) / 1e6,
			"bytes":       len(res.body),
		})
		s.logger.Println(string(line))
	}
}
