package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSimulateBatchEndpoint drives the batched form of /v1/simulate:
// N configs over one topology, answered in index order with per-config
// results, and — the point of the batch — one simulation-kernel build
// amortized across every config that shares a recipe.
func TestSimulateBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"topology":{"kind":"mesh","n":4},"configs":[
		{"regime":"nominal"},
		{"regime":"random","trials":8,"seed":3,"params":{"eps":0.2}},
		{"regime":"random","trials":8,"seed":4,"params":{"eps":0.2}},
		{"regime":"adversarial","pair":[0,15]},
		{"mode":"hybrid","seed":9,"hybrid":{"element_size":3,"waves":8}},
		{"mode":"hybrid","seed":10,"hybrid":{"element_size":3,"waves":8}}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.Configs != 6 || len(out.Results) != 6 {
		t.Fatalf("want 6 results, got configs=%d len=%d", out.Configs, len(out.Results))
	}
	for i, item := range out.Results {
		if item.Index != i {
			t.Fatalf("result %d carries index %d", i, item.Index)
		}
		if item.Error != "" || item.Result == nil {
			t.Fatalf("result %d failed: %q", i, item.Error)
		}
	}
	if n := out.Results[1].Result.CommSkew.N; n != 8 {
		t.Fatalf("config 1: want 8 skew samples, got %d", n)
	}
	if out.Results[4].Result.Hybrid == nil || out.Results[4].Result.Hybrid.CycleTime <= 0 {
		t.Fatalf("config 4: hybrid summary incomplete: %+v", out.Results[4].Result)
	}
	// One clocksim kernel (all four clock configs share tree/equalize/
	// spacing) + one hybrid system (both share element_size) = 2 misses;
	// every per-config lookup after the sequential warm pass hits.
	if got := s.metrics.simKernelMisses.Value(); got != 2 {
		t.Fatalf("want 2 sim-kernel misses for one batch, got %d", got)
	}
	if got := s.metrics.simKernelHits.Value(); got != 6 {
		t.Fatalf("want 6 sim-kernel hits (one per config), got %d", got)
	}
}

// TestSimulateBatchMatchesSingleRequests pins the batch path to the
// single-config path: each batch item's result must be byte-identical
// to the same config posted alone.
func TestSimulateBatchMatchesSingleRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch := `{"topology":{"kind":"linear","n":12},"configs":[
		{"regime":"random","trials":4,"seed":7,"params":{"eps":0.1,"min_separation":0.5}},
		{"mode":"hybrid","seed":5,"hybrid":{"element_size":4,"waves":8}}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", batch)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	singles := []string{
		`{"topology":{"kind":"linear","n":12},"regime":"random","trials":4,"seed":7,"params":{"eps":0.1,"min_separation":0.5}}`,
		`{"topology":{"kind":"linear","n":12},"mode":"hybrid","seed":5,"hybrid":{"element_size":4,"waves":8}}`,
	}
	for i, single := range singles {
		_, ts2 := newTestServer(t, Config{})
		sresp, sbody := postJSON(t, ts2.URL+"/v1/simulate", single)
		if sresp.StatusCode != 200 {
			t.Fatalf("single %d: status %d: %s", i, sresp.StatusCode, sbody)
		}
		got, err := json.Marshal(out.Results[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		var want SimulateResponse
		if err := json.Unmarshal(sbody, &want); err != nil {
			t.Fatal(err)
		}
		wantb, err := json.Marshal(&want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantb) {
			t.Fatalf("batch item %d diverges from single request:\n%s\n%s", i, got, wantb)
		}
	}
}

// TestSimulateBatchInlineErrors: a bad config fails its own slot, not
// its siblings — the batch collects per-item errors like analyze does.
func TestSimulateBatchInlineErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"topology":{"kind":"mesh","n":4},"configs":[
		{"regime":"sideways"},
		{"regime":"nominal"},
		{"regime":"adversarial","pair":[0,999]}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.Results[0].Error == "" || !strings.Contains(out.Results[0].Error, "regime") {
		t.Fatalf("config 0: want regime error, got %q", out.Results[0].Error)
	}
	if out.Results[1].Error != "" || out.Results[1].Result == nil {
		t.Fatalf("config 1 should succeed beside failing siblings: %q", out.Results[1].Error)
	}
	if out.Results[2].Error == "" {
		t.Fatalf("config 2: want pair-range error, got success")
	}
}

// TestSimulateBatchRejectsPerConfigTopology: every config runs over the
// request's topology; a config smuggling its own is refused in its slot.
func TestSimulateBatchRejectsPerConfigTopology(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"topology":{"kind":"mesh","n":4},"configs":[
		{"regime":"nominal","topology":{"kind":"ring","n":8}}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if !strings.Contains(out.Results[0].Error, "request's topology") {
		t.Fatalf("want mixed-topology rejection, got %q", out.Results[0].Error)
	}
}

// TestSimulateBatchSizeBound: batches beyond max_batch_configs are
// refused whole with 400, before any config runs.
func TestSimulateBatchSizeBound(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchConfigs: 2})
	req := `{"topology":{"kind":"mesh","n":4},"configs":[
		{"regime":"nominal"},{"regime":"nominal"},{"regime":"nominal"}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 400 {
		t.Fatalf("want 400 for oversized batch, got %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("batch")) {
		t.Fatalf("error should name the batch bound: %s", body)
	}
}

// TestSimulateBatchDeterministic: same batch on a fresh server is
// byte-identical — batch responses cache and replay like every other
// endpoint.
func TestSimulateBatchDeterministic(t *testing.T) {
	req := `{"topology":{"kind":"hex","n":9},"configs":[
		{"regime":"random","trials":6,"seed":2,"params":{"eps":0.3}},
		{"regime":"jittered","trials":6,"seed":2,"params":{"eps":0.3},
		 "faults":{"JitterProb":0.2,"MaxJitter":0.4}},
		{"mode":"hybrid","seed":2,"hybrid":{"element_size":2,"waves":6}}
	]}`
	_, ts := newTestServer(t, Config{})
	_, body := postJSON(t, ts.URL+"/v1/simulate", req)
	_, ts2 := newTestServer(t, Config{})
	_, body2 := postJSON(t, ts2.URL+"/v1/simulate", req)
	if !bytes.Equal(body, body2) {
		t.Fatalf("same batch produced different responses:\n%s\n%s", body, body2)
	}
}
