package service

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// FuzzSimulateBatch fuzzes the batch request decoder end to end:
// arbitrary JSON through Unmarshal → applyDefaults → canonicalize →
// (bounded) computeSimulate. The harness asserts three properties that
// the HTTP layer relies on: defaults are idempotent, canonicalization
// is deterministic (the cache key would otherwise split identical
// requests), and no decodable request — malformed topology N, mixed
// per-config topologies, hostile timeout_ms — can panic the compute
// path or return a success with a malformed batch shape.
func FuzzSimulateBatch(f *testing.F) {
	f.Add([]byte(`{"topology":{"kind":"mesh","n":4},"configs":[
		{"regime":"nominal"},
		{"regime":"random","trials":4,"seed":2,"params":{"eps":0.2}},
		{"mode":"hybrid","seed":3,"hybrid":{"element_size":3,"waves":4}}]}`))
	f.Add([]byte(`{"topology":{"kind":"mesh","n":-7},"configs":[{"regime":"nominal"}]}`))
	f.Add([]byte(`{"topology":{"kind":"ring","n":6},"configs":[
		{"regime":"nominal","topology":{"kind":"linear","n":3}}]}`))
	f.Add([]byte(`{"topology":{"kind":"linear","n":8},"timeout_ms":1,"configs":[
		{"regime":"random","trials":8,"seed":1}]}`))
	f.Add([]byte(`{"topology":{"kind":"torus","rows":3,"cols":4},"configs":[]}`))
	f.Add([]byte(`{"configs":[{"regime":"nominal"}]}`))
	f.Add([]byte(`{"topology":{"kind":"hex","n":9},"configs":[{"regime":"adversarial","pair":[0,99]},
		{"regime":"jittered","trials":2,"seed":5,"faults":{"JitterProb":2,"MaxJitter":-1}}]}`))

	s := NewServer(Config{MaxBatchConfigs: 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SimulateRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		req.applyDefaults()
		c1, err := canonicalize(&req)
		if err != nil {
			return
		}
		// Defaults must be idempotent, or cached replays of a defaulted
		// request would diverge from the original.
		req.applyDefaults()
		c2, err := canonicalize(&req)
		if err != nil || !bytes.Equal(c1, c2) {
			t.Fatalf("applyDefaults is not idempotent:\n%s\n%s (err %v)", c1, c2, err)
		}

		// Bound the compute so the fuzzer explores decode space, not
		// simulation runtime: small graphs, few trials, short waves.
		g, err := req.build()
		if err != nil || g.NumCells() > 64 {
			return
		}
		if req.Trials > 16 {
			return
		}
		for i := range req.Configs {
			c := &req.Configs[i]
			if c.Trials > 16 || (c.Hybrid != nil && c.Hybrid.Waves > 64) {
				return
			}
		}
		if req.Hybrid != nil && req.Hybrid.Waves > 64 {
			return
		}
		// timeout_ms interaction: serve under the request's own deadline
		// (capped for the fuzzer); cancellation must surface as an error,
		// never a panic or a partial success.
		deadline := 2 * time.Second
		if req.TimeoutMS > 0 && time.Duration(req.TimeoutMS)*time.Millisecond < deadline {
			deadline = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		defer cancel()
		resp, err := s.computeSimulate(ctx, &req)
		if err != nil {
			return
		}
		if len(req.Configs) > 0 {
			var out SimulateBatchResponse
			if err := json.Unmarshal(resp.body, &out); err != nil {
				t.Fatalf("batch success with undecodable body: %v\n%s", err, resp.body)
			}
			if out.Configs != len(req.Configs) || len(out.Results) != len(req.Configs) {
				t.Fatalf("batch shape mismatch: %d configs in, %d/%d out",
					len(req.Configs), out.Configs, len(out.Results))
			}
			for i, item := range out.Results {
				if item.Index != i {
					t.Fatalf("result %d carries index %d", i, item.Index)
				}
				if (item.Error == "") == (item.Result == nil) {
					t.Fatalf("result %d must carry exactly one of error and result: %+v", i, item)
				}
			}
		}
	})
}
