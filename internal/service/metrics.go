package service

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/stats"
)

// latencySamples bounds each endpoint's latency reservoir; quantiles are
// computed over the most recent window.
const latencySamples = 4096

// latencyVar is an expvar-compatible latency histogram: a ring of recent
// samples whose String() reports count, mean, and p50/p95/p99 computed
// with stats.Percentiles (one sort for the whole quantile batch).
type latencyVar struct {
	mu      sync.Mutex
	samples []float64 // milliseconds, ring buffer
	next    int
	full    bool
	count   int64
	sum     float64
}

// Observe records one request latency.
func (l *latencyVar) Observe(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.samples == nil {
		l.samples = make([]float64, latencySamples)
	}
	l.samples[l.next] = ms
	l.next = (l.next + 1) % len(l.samples)
	if l.next == 0 {
		l.full = true
	}
	l.count++
	l.sum += ms
}

// summary returns the histogram's numeric aggregates: lifetime count and
// sum (ms), and p50/p95/p99 over the recent window. The Prometheus
// exposition and the expvar String both build on it.
func (l *latencyVar) summary() (count int64, sum, p50, p95, p99 float64) {
	l.mu.Lock()
	window := l.samples[:l.next]
	if l.full {
		window = l.samples
	}
	window = append([]float64(nil), window...)
	count, sum = l.count, l.sum
	l.mu.Unlock()
	if count == 0 {
		return 0, 0, 0, 0, 0
	}
	qs := stats.Percentiles(window, 50, 95, 99)
	return count, sum, qs[0], qs[1], qs[2]
}

// String implements expvar.Var with a JSON object of summary quantiles.
func (l *latencyVar) String() string {
	count, sum, p50, p95, p99 := l.summary()
	if count == 0 {
		return `{"count":0}`
	}
	return fmt.Sprintf(`{"count":%d,"mean_ms":%.4g,"p50_ms":%.4g,"p95_ms":%.4g,"p99_ms":%.4g}`,
		count, sum/float64(count), p50, p95, p99)
}

// metrics is the server's observability state: expvar counters and
// per-endpoint latency histograms, exported as one JSON document at
// /metrics. The vars live on the server rather than in expvar's global
// registry so multiple servers (tests, embedded use) never collide.
type metrics struct {
	start     time.Time
	requests  expvar.Int // all requests, any outcome
	errors    expvar.Int // requests answered with a non-2xx status
	hits      expvar.Int // responses served from the result cache
	misses    expvar.Int // responses computed by this request (leader)
	coalesced expvar.Int // responses shared from another in-flight request
	computes  expvar.Int // underlying engine executions
	inFlight  expvar.Int // requests currently being served

	kernelHits   expvar.Int // skew-kernel cache hits (precomputation reused)
	kernelMisses expvar.Int // skew-kernel cache misses (tree + kernel built)

	simKernelHits   expvar.Int // simulation-kernel cache hits (clocksim kernel or hybrid system reused)
	simKernelMisses expvar.Int // simulation-kernel cache misses (engine precomputation built)

	streamedFallbacks expvar.Int // analyses served by the streamed path after a 413-size kernel rejection
	streamedShards    expvar.Int // pair shards processed by the streamed path (local and on behalf of peers)
	streamedSpills    expvar.Int // shards spilled to a peer over /v1/cluster/shard

	forwards      *expvar.Map // requests forwarded to peers, keyed by peer URL
	forwardErrors expvar.Int  // forwards with no reachable target (served 502)
	hedges        expvar.Int  // forwards whose hedge copy was sent
	hedgeWins     expvar.Int  // ... where the hedge copy answered first
	cacheFill     expvar.Int  // local cache entries filled from a peer

	jobsCreated expvar.Int // jobs accepted by POST /v1/jobs

	// Fixed-bucket histograms, the aggregatable complement of the
	// latencyVar summaries: identical bucket layouts on every node let a
	// fleet scraper sum them into true cluster-wide percentiles, and
	// their bucket exemplars carry trace IDs into the exposition.
	forwardHist *obs.Histogram // cluster forward+hedge latency, ms
	jobTrials   *obs.Histogram // per-chunk job throughput, trials/s

	mu        sync.Mutex
	latencies map[string]*latencyVar    // endpoint → summary window
	histories map[string]*obs.Histogram // endpoint → fixed-bucket histogram

	vars *expvar.Map
}

func newMetrics() *metrics {
	m := &metrics{
		start:       time.Now(),
		latencies:   make(map[string]*latencyVar),
		histories:   make(map[string]*obs.Histogram),
		forwardHist: obs.NewHistogram(obs.DefaultLatencyBucketsMS),
		jobTrials:   obs.NewHistogram(obs.DefaultThroughputBuckets),
	}
	m.vars = new(expvar.Map).Init()
	m.vars.Set("requests", &m.requests)
	m.vars.Set("errors", &m.errors)
	m.vars.Set("cache_hits", &m.hits)
	m.vars.Set("cache_misses", &m.misses)
	m.vars.Set("coalesced", &m.coalesced)
	m.vars.Set("computes", &m.computes)
	m.vars.Set("in_flight", &m.inFlight)
	m.vars.Set("kernel_cache_hits", &m.kernelHits)
	m.vars.Set("kernel_cache_misses", &m.kernelMisses)
	m.vars.Set("sim_kernel_cache_hits", &m.simKernelHits)
	m.vars.Set("sim_kernel_cache_misses", &m.simKernelMisses)
	m.vars.Set("streamed_fallback_total", &m.streamedFallbacks)
	m.vars.Set("streamed_shards_total", &m.streamedShards)
	m.vars.Set("streamed_spills_total", &m.streamedSpills)
	m.forwards = new(expvar.Map).Init()
	m.vars.Set("cluster_forward_total", m.forwards)
	m.vars.Set("cluster_forward_errors_total", &m.forwardErrors)
	m.vars.Set("cluster_hedge_total", &m.hedges)
	m.vars.Set("cluster_hedge_wins_total", &m.hedgeWins)
	m.vars.Set("cluster_cache_fill_total", &m.cacheFill)
	m.vars.Set("jobs_created", &m.jobsCreated)
	m.vars.Set("cache_hit_ratio", expvar.Func(func() any {
		h, n := m.hits.Value(), m.hits.Value()+m.misses.Value()+m.coalesced.Value()
		if n == 0 {
			return 0.0
		}
		return float64(h) / float64(n)
	}))
	m.vars.Set("uptime_s", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	return m
}

// registerKernelBytes exposes the server's estimate of resident bytes
// across every cached kernel and streamer as the kernel_bytes_in_use
// gauge, so operators can watch precomputation footprint against the
// configured kernel byte budget.
func (m *metrics) registerKernelBytes(f func() int64) {
	m.vars.Set("kernel_bytes_in_use", expvar.Func(func() any { return f() }))
}

// registerJobs exposes the job manager's live state counts under the
// "jobs" key of the metrics document, plus flat lifecycle gauges and
// cumulative terminal-state counters that survive retention.
func (m *metrics) registerJobs(mgr *jobs.Manager) {
	m.vars.Set("jobs", expvar.Func(func() any { return mgr.Stats() }))
	m.vars.Set("jobs_pending", expvar.Func(func() any { return mgr.Counts().Pending }))
	m.vars.Set("jobs_running", expvar.Func(func() any { return mgr.Counts().Running }))
	m.vars.Set("jobs_done_total", expvar.Func(func() any { return mgr.Counts().DoneTotal }))
	m.vars.Set("jobs_failed_total", expvar.Func(func() any { return mgr.Counts().FailedTotal }))
	m.vars.Set("jobs_canceled_total", expvar.Func(func() any { return mgr.Counts().CanceledTotal }))
}

// latency returns (creating on first use) the summary for endpoint.
func (m *metrics) latency(endpoint string) *latencyVar {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.latencies[endpoint]
	if !ok {
		l = &latencyVar{}
		m.latencies[endpoint] = l
		m.vars.Set("latency_"+endpoint, l)
	}
	return l
}

// requestHist returns (creating on first use) the fixed-bucket latency
// histogram for endpoint.
func (m *metrics) requestHist(endpoint string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histories[endpoint]
	if !ok {
		h = obs.NewHistogram(obs.DefaultLatencyBucketsMS)
		m.histories[endpoint] = h
	}
	return h
}

// snapshot returns the full metrics document as indented JSON.
// expvar.Map.String already emits JSON with sorted keys; every var it
// holds (Int, Func, latencyVar) also stringifies to valid JSON, so the
// composition is a valid, deterministic-shaped document.
func (m *metrics) snapshot() []byte {
	s := m.vars.String()
	var buf bytes.Buffer
	if err := json.Indent(&buf, []byte(s), "", "  "); err != nil {
		b, _ := json.Marshal(map[string]string{"error": "invalid metrics document"})
		return append(b, '\n')
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}
