package service

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var computes int
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	var mu sync.Mutex
	leaders, followers := 0, 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(first bool) {
			defer wg.Done()
			if !first {
				<-started // ensure the leader holds the key before followers arrive
			}
			res, err, coalesced, leader := g.Do(context.Background(), "k", "r0", func() (response, error) {
				close(started)
				computes++
				<-release
				return jsonResponse([]byte("ok")), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if string(res.body) != "ok" {
				t.Errorf("res = %q", res.body)
			}
			if leader != "r0" {
				t.Errorf("leader = %q, want r0", leader)
			}
			mu.Lock()
			if coalesced {
				followers++
			} else {
				leaders++
			}
			mu.Unlock()
		}(i == 0)
	}
	// Give followers time to park on the in-flight call, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", computes)
	}
	if leaders != 1 || followers != 7 {
		t.Fatalf("leaders=%d followers=%d, want 1 and 7", leaders, followers)
	}
}

func TestFlightGroupDistinctKeysIndependent(t *testing.T) {
	g := newFlightGroup()
	var mu sync.Mutex
	ran := map[string]int{}
	var wg sync.WaitGroup
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			g.Do(context.Background(), k, "r-"+k, func() (response, error) {
				mu.Lock()
				ran[k]++
				mu.Unlock()
				return response{}, nil
			})
		}(k)
	}
	wg.Wait()
	for _, k := range []string{"a", "b", "c"} {
		if ran[k] != 1 {
			t.Fatalf("key %q ran %d times", k, ran[k])
		}
	}
}

func TestFlightGroupFollowerRespectsContext(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go g.Do(context.Background(), "k", "r-lead", func() (response, error) {
		close(started)
		<-release
		return response{}, nil
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err, coalesced, leader := g.Do(ctx, "k", "r-follow", func() (response, error) {
		t.Error("follower must not compute")
		return response{}, nil
	})
	if !coalesced {
		t.Fatalf("second caller should have joined the in-flight call")
	}
	if leader != "r-lead" {
		t.Fatalf("leader = %q, want r-lead", leader)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestConcurrentIdenticalRequestsComputeOnce is the acceptance check:
// N clients posting the same analyze request while none is cached must
// trigger exactly one engine execution.
func TestConcurrentIdenticalRequestsComputeOnce(t *testing.T) {
	const n = 8
	s := NewServer(Config{})
	release := make(chan struct{})
	s.computeGate = func(string) { <-release }
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := `{"topology":{"kind":"mesh","n":4},"trees":["htree"],"montecarlo_trials":64,"seed":5}`
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
			bodies[i] = body
		}(i)
	}

	// Wait until all n requests are in flight (leader at the gate,
	// followers parked on its call), then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.inFlight.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests in flight", s.metrics.inFlight.Value(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := s.metrics.computes.Value(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1 for %d identical concurrent requests", got, n)
	}
	if got := s.metrics.coalesced.Value(); got != n-1 {
		t.Fatalf("coalesced = %d, want %d", got, n-1)
	}
	if got := s.metrics.misses.Value(); got != 1 {
		t.Fatalf("cache_misses = %d, want 1", got)
	}
	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}
