package service

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical requests: while one caller
// (the leader) computes the response for a key, followers arriving with
// the same key block until the leader finishes and share its result —
// the underlying engines run exactly once per distinct in-flight
// request, no matter how many clients ask.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{} // closed when res/err are final
	leader string        // request ID of the caller computing the result
	res    response
	err    error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do returns fn's result for key, computing it at most once across
// concurrent callers. owner identifies this caller (its request ID);
// the returned leader is the owner of the caller that actually computed
// — the caller itself when coalesced is false, otherwise the request
// whose computation was shared, so follower log lines and spans can
// point at the leader's. A follower whose ctx expires stops waiting and
// returns ctx's error; the leader's computation is not interrupted on
// its behalf.
func (g *flightGroup) Do(ctx context.Context, key, owner string, fn func() (response, error)) (res response, err error, coalesced bool, leader string) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err, true, c.leader
		case <-ctx.Done():
			return response{}, ctx.Err(), true, c.leader
		}
	}
	c := &flightCall{done: make(chan struct{}), leader: owner}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, c.err, false, owner
}
