package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/skew"
)

// TestStreamedFallbackMatchesKernel pins the fallback's exactness
// contract over the wire: for every request shape, the answer a
// tiny-limit server produces via the streamed path carries the same
// exact fields — max skew, worst pair, distances, pair count,
// guaranteed minimum — as a big-limit server's kernel answer, plus the
// machine-readable streamed marker.
func TestStreamedFallbackMatchesKernel(t *testing.T) {
	_, small := newTestServer(t, Config{KernelLimits: skew.Limits{MaxPairs: 4}})
	_, big := newTestServer(t, Config{KernelLimits: skew.Limits{MaxPairs: 1 << 20}})

	cases := []struct {
		name string
		body string
	}{
		{"mesh htree linear", `{"topology":{"kind":"mesh","n":8}}`},
		{"mesh htree equalized", `{"topology":{"kind":"mesh","n":8},"equalize":true}`},
		{"mesh htree summation", `{"topology":{"kind":"mesh","n":7},"model":{"kind":"summation","eps":0.25}}`},
		{"rect mesh spine", `{"topology":{"kind":"mesh","rows":5,"cols":9},"trees":["spine"]}`},
		{"torus htree", `{"topology":{"kind":"torus","rows":4,"cols":6}}`},
		{"mesh htree buffered", `{"topology":{"kind":"mesh","n":8},"buffer_spacing":2}`},
		{"mesh two trees", `{"topology":{"kind":"mesh","n":8},"trees":["htree","serpentine"]}`},
		{"mesh sampled mc", `{"topology":{"kind":"mesh","n":8},"montecarlo_trials":16,"seed":7}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, rawSmall := postJSON(t, small.URL+"/v1/analyze", tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("small-limit server: status %d, want 200: %s", resp.StatusCode, rawSmall)
			}
			resp, rawBig := postJSON(t, big.URL+"/v1/analyze", tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("big-limit server: status %d, want 200: %s", resp.StatusCode, rawBig)
			}
			var got, want AnalyzeResponse
			if err := json.Unmarshal(rawSmall, &got); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(rawBig, &want); err != nil {
				t.Fatal(err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("result counts differ: %d vs %d", len(got.Results), len(want.Results))
			}
			for i, g := range got.Results {
				w := want.Results[i]
				if w.Error != "" {
					continue // builder mismatch reports inline on both
				}
				if !g.Streamed {
					t.Fatalf("tree %s: small-limit answer not marked streamed: %s", g.Tree, rawSmall)
				}
				if g.MaxSkew != w.MaxSkew || g.WorstPair != w.WorstPair ||
					g.MaxD != w.MaxD || g.MaxS != w.MaxS || g.Pairs != w.Pairs ||
					g.GuaranteedMinSkew != w.GuaranteedMinSkew {
					t.Errorf("tree %s: streamed answer diverges from kernel:\n  streamed %+v\n  kernel   %+v", g.Tree, g, w)
				}
				if g.StreamShards < 1 {
					t.Errorf("tree %s: streamed answer reports %d shards", g.Tree, g.StreamShards)
				}
				if g.SkewP99 < g.SkewP50 || g.SkewP99 > g.MaxSkew*(1+g.QuantileRelError)+1e-12 {
					t.Errorf("tree %s: implausible quantiles p50=%g p99=%g max=%g", g.Tree, g.SkewP50, g.SkewP99, g.MaxSkew)
				}
				if strings.Contains(tc.body, "montecarlo_trials") {
					if g.Sampled == nil {
						t.Fatalf("tree %s: montecarlo_trials set but no sampled estimate", g.Tree)
					}
					// Small graphs fit under the sample cap, so the sampled
					// estimate short-circuits to the exhaustive exact value.
					if !g.Sampled.Exhaustive || g.Sampled.Max != g.MaxSkew || g.Sampled.CI95 != 0 {
						t.Errorf("tree %s: exhaustive sampled estimate %+v, want Max=%g CI95=0", g.Tree, g.Sampled, g.MaxSkew)
					}
					if w.MonteCarloMaxSkew == 0 {
						t.Errorf("tree %s: kernel reference lost its Monte-Carlo result", g.Tree)
					}
				}
			}
		})
	}
}

// TestStreamedFallbackMetrics: the fallback shows up in both metric
// expositions — streamed counters in the expvar document, counters and
// the kernel_bytes_in_use gauge in the Prometheus text.
func TestStreamedFallbackMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{KernelLimits: skew.Limits{MaxPairs: 4}})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"topology":{"kind":"mesh","n":8}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		StreamedFallbacks int64 `json:"streamed_fallback_total"`
		StreamedShards    int64 `json:"streamed_shards_total"`
		KernelBytes       int64 `json:"kernel_bytes_in_use"`
	}
	getJSON(t, ts.URL+"/metrics", &doc)
	if doc.StreamedFallbacks < 1 {
		t.Errorf("streamed_fallback_total = %d, want >= 1", doc.StreamedFallbacks)
	}
	if doc.StreamedShards < 1 {
		t.Errorf("streamed_shards_total = %d, want >= 1", doc.StreamedShards)
	}
	if doc.KernelBytes <= 0 {
		t.Errorf("kernel_bytes_in_use = %d, want > 0 after a streamer build", doc.KernelBytes)
	}
	prom, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	b, err := io.ReadAll(prom.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, name := range []string{"streamed_fallback_total", "streamed_shards_total", "kernel_bytes_in_use", "streamer_cache_entries"} {
		if !strings.Contains(text, name) {
			t.Errorf("prom exposition missing %s", name)
		}
	}
}

// TestStreamedCertifiedBoundOnCompactTree: the certified lower bound
// needs a full tree; on the compact tree the streamed path builds for
// htree it must report its inapplicability inline rather than silently
// certifying nothing.
func TestStreamedCertifiedBoundOnCompactTree(t *testing.T) {
	_, ts := newTestServer(t, Config{KernelLimits: skew.Limits{MaxPairs: 4}})
	resp, body := postJSON(t, ts.URL+"/v1/analyze",
		`{"topology":{"kind":"mesh","n":8},"model":{"kind":"summation","eps":0.25},"certified_lower_bound":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc AnalyzeResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	r := doc.Results[0]
	if !r.Streamed || r.MaxSkew == 0 {
		t.Fatalf("expected a streamed analysis, got %+v", r)
	}
	if r.CertifiedLowerBound != 0 || !strings.Contains(r.Error, "compact") {
		t.Errorf("compact-tree certified bound: got bound %g, error %q; want 0 and an inline compact-tree error",
			r.CertifiedLowerBound, r.Error)
	}
}

// TestStreamedJobPartials: an analyze job that falls back to the
// streamed path publishes shard-level partials (pairs scanned, sketch
// quantiles so far) and finishes with the streamed result document.
func TestStreamedJobPartials(t *testing.T) {
	_, ts := newTestServer(t, Config{KernelLimits: skew.Limits{MaxPairs: 4}, StreamShardSize: 16})
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"analyze":{"topology":{"kind":"mesh","n":10}}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create: status %d: %s", resp.StatusCode, body)
	}
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	stream, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	var sawPartial bool
	var result json.RawMessage
	dec := json.NewDecoder(stream.Body)
	for {
		var ev struct {
			State   string          `json:"state"`
			Partial json.RawMessage `json:"partial,omitempty"`
			Result  json.RawMessage `json:"result,omitempty"`
			Error   string          `json:"error,omitempty"`
		}
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if len(ev.Partial) > 0 {
			var p StreamedPartial
			if err := json.Unmarshal(ev.Partial, &p); err != nil {
				t.Fatalf("partial not a StreamedPartial: %v: %s", err, ev.Partial)
			}
			if !p.Streamed || p.PairsTotal <= 0 || p.PairsDone > p.PairsTotal {
				t.Fatalf("implausible streamed partial %+v", p)
			}
			sawPartial = true
		}
		if ev.Error != "" {
			t.Fatalf("job failed: %s", ev.Error)
		}
		if len(ev.Result) > 0 {
			result = ev.Result
			break
		}
	}
	if !sawPartial {
		t.Error("job stream carried no streamed partials")
	}
	var doc AnalyzeResponse
	if err := json.Unmarshal(result, &doc); err != nil {
		t.Fatalf("job result: %v: %s", err, result)
	}
	if len(doc.Results) != 1 || !doc.Results[0].Streamed || doc.Results[0].MaxSkew <= 0 {
		t.Errorf("job result not a streamed analysis: %s", result)
	}
}

// TestClusterShardEndpoint: POST /v1/cluster/shard computes one pair
// shard bit-identically to a local Streamer.ShardStats, and rejects bad
// methods and ranges.
func TestClusterShardEndpoint(t *testing.T) {
	tc := newTestCluster(t, 2, nil)

	g, err := comm.Build("mesh", 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := clocktree.HTreeCompact(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := skew.NewStreamer(g, tree)
	if err != nil {
		t.Fatal(err)
	}
	model := skew.Linear{M: 1, Eps: 0.1}
	want, err := st.ShardStats(model, 8, 24)
	if err != nil {
		t.Fatal(err)
	}

	body := `{"topology":{"kind":"mesh","n":6},"tree":"htree","model":{"kind":"linear"},"lo":8,"hi":24}`
	resp, raw := postJSON(t, tc.urls[0]+"/v1/cluster/shard", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got skew.ShardStats
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Lo != want.Lo || got.Hi != want.Hi || got.MaxSkew != want.MaxSkew ||
		got.WorstA != want.WorstA || got.WorstB != want.WorstB ||
		got.MaxD != want.MaxD || got.MaxS != want.MaxS {
		t.Errorf("shard over the wire diverges:\n  got  %+v\n  want %+v", got, want)
	}
	if got.Sketch == nil || want.Sketch == nil || *got.Sketch != *want.Sketch {
		t.Error("shard sketch did not round-trip bit-identically")
	}

	resp, raw = postJSON(t, tc.urls[0]+"/v1/cluster/shard",
		`{"topology":{"kind":"mesh","n":6},"lo":3,"hi":2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("inverted range: status %d, want 400: %s", resp.StatusCode, raw)
	}
	getResp, err := http.Get(tc.urls[0] + "/v1/cluster/shard")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", getResp.StatusCode)
	}
}

// TestStreamedPeerShardSpill: with -stream-peer-shards on, a streamed
// analysis spills the shards the ring assigns to peers and still
// answers exactly — the spilled sketches and maxima fold back into the
// same bit-identical result a single node produces.
func TestStreamedPeerShardSpill(t *testing.T) {
	tc := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.KernelLimits = skew.Limits{MaxPairs: 4}
		cfg.StreamShardSize = 16
		cfg.StreamPeerShards = true
	})
	body := `{"topology":{"kind":"mesh","n":12},"trees":["htree"]}`

	resp, raw := postJSON(t, tc.urls[0]+"/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got AnalyzeResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || !got.Results[0].Streamed {
		t.Fatalf("expected one streamed result: %s", raw)
	}

	// Reference: a standalone big-limit server's kernel answer.
	_, ref := newTestServer(t, Config{KernelLimits: skew.Limits{MaxPairs: 1 << 20}})
	_, rawRef := postJSON(t, ref.URL+"/v1/analyze", body)
	var want AnalyzeResponse
	if err := json.Unmarshal(rawRef, &want); err != nil {
		t.Fatal(err)
	}
	g, w := got.Results[0], want.Results[0]
	if g.MaxSkew != w.MaxSkew || g.WorstPair != w.WorstPair || g.Pairs != w.Pairs {
		t.Errorf("spilled streamed answer diverges from kernel:\n  got  %+v\n  want %+v", g, w)
	}

	// The ring decides, per shard, whether the computing node spilled it;
	// recompute that assignment and hold the spill counter to it exactly.
	req := &AnalyzeRequest{}
	if err := json.Unmarshal([]byte(body), req); err != nil {
		t.Fatal(err)
	}
	req.applyDefaults()
	base, ok := req.affinityKey()
	if !ok {
		t.Fatal("analyze request must have an affinity key")
	}
	ring := tc.servers[0].cluster.ring
	owner := ring.Owner(base)
	var expected int64
	for lo := int64(0); lo < int64(g.Pairs); lo += 16 {
		if ring.Owner(fmt.Sprintf("%s/shard/%d", base, lo)) != owner {
			expected++
		}
	}
	var spills int64
	for _, s := range tc.servers {
		spills += s.metrics.streamedSpills.Value()
	}
	if spills != expected {
		t.Errorf("streamed_spills_total = %d across the cluster, ring assigns %d shards to peers", spills, expected)
	}
	if expected == 0 {
		t.Log("ring assigned every shard to the computing node; spill path not exercised this run")
	}
}
