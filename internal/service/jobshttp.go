// The async /v1/jobs API: POST /v1/jobs accepts an analyze or simulate
// request too large to hold an HTTP connection open for (1024²+ mesh
// analyses, long Monte-Carlo sweeps), runs it in the background under
// the jobs manager, and streams partial results — trials-completed
// progress and incrementally tightening Monte-Carlo quantiles — over
// GET /v1/jobs/{id}/stream as NDJSON (or SSE on request).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/skew"
	"repro/internal/stats"
)

// JobRequest is the body of POST /v1/jobs: exactly one of Analyze or
// Simulate, an optional client-chosen ID (defaulted from the request's
// content address), and an optional progress granularity.
type JobRequest struct {
	ID string `json:"id,omitempty"`
	// Kind is optional; it is inferred from whichever request is set and
	// validated against it when both are given.
	Kind     string           `json:"kind,omitempty"`
	Analyze  *AnalyzeRequest  `json:"analyze,omitempty"`
	Simulate *SimulateRequest `json:"simulate,omitempty"`
	// ChunkTrials is how many Monte-Carlo trials run between progress
	// events. Default 256.
	ChunkTrials int `json:"chunk_trials,omitempty"`
}

// handleJobs dispatches the /v1/jobs collection: POST creates, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobCreate(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET or POST", ReasonMethodNotAllowed)
	}
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := readJSON(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), ReasonBadRequest)
		return
	}
	var req JobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding job request: %v", err), ReasonBadRequest)
		return
	}
	kind, run, canonical, err := s.prepareJob(&req)
	if err != nil {
		writeError(w, statusOf(err), err.Error(), reasonOf(err))
		return
	}
	id := req.ID
	if id == "" {
		// Content-derived default ID: re-posting the identical work is a
		// visible 409 instead of a silent duplicate computation.
		id = kind + "-" + cacheKey("job:"+kind, canonical)[:12]
	}
	j, err := s.jobs.Create(id, kind, raw, s.traceJob(r, kind, id, run))
	switch {
	case errors.Is(err, jobs.ErrExists):
		writeError(w, http.StatusConflict, err.Error(), ReasonJobExists)
		return
	case errors.Is(err, jobs.ErrFull):
		writeError(w, http.StatusTooManyRequests, err.Error(), ReasonTooManyJobs)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error(), ReasonBadRequest)
		return
	}
	s.metrics.jobsCreated.Add(1)
	writeSnapshot(w, http.StatusAccepted, j.Snapshot())
}

// traceJob wraps a job's run function so its background execution is a
// traced operation. The job outlives the submitting request, so its
// root span adopts the submitter's span context as a remote parent —
// the same mechanism used for cross-node forwards — which makes the
// whole async computation parent under the POST /v1/jobs span in a
// merged trace even though it runs on its own context.
func (s *Server) traceJob(r *http.Request, kind, id string, run jobs.RunFunc) jobs.RunFunc {
	parent := obs.SpanContextOf(r.Context())
	requestID := requestIDFrom(r.Context())
	return func(ctx context.Context, job *jobs.Job) (json.RawMessage, string, error) {
		ctx = obs.WithTracer(ctx, s.tracer)
		if parent.Valid() {
			ctx = obs.WithRemoteParent(ctx, parent)
		}
		ctx, span := obs.Start(ctx, "job.run",
			obs.String("kind", kind), obs.String("job_id", id),
			obs.String("request_id", requestID))
		defer span.End()
		out, reason, err := run(ctx, job)
		if err != nil {
			span.Annotate(obs.String("error", err.Error()))
		}
		return out, reason, err
	}
}

// prepareJob validates a JobRequest and binds its run function. It
// returns the job kind, the runner, and the inner request's canonical
// bytes (the basis of the default job ID).
func (s *Server) prepareJob(req *JobRequest) (kind string, run jobs.RunFunc, canonical []byte, err error) {
	if req.Analyze != nil && req.Simulate != nil {
		return "", nil, nil, badRequest("give exactly one of analyze and simulate, not both")
	}
	chunk := req.ChunkTrials
	if chunk <= 0 {
		chunk = 256
	}
	switch {
	case req.Analyze != nil:
		kind = "analyze"
		req.Analyze.applyDefaults()
		if canonical, err = canonicalize(req.Analyze); err != nil {
			return "", nil, nil, err
		}
		run = s.runAnalyzeJob(req.Analyze, chunk)
	case req.Simulate != nil:
		kind = "simulate"
		req.Simulate.applyDefaults()
		if canonical, err = canonicalize(req.Simulate); err != nil {
			return "", nil, nil, err
		}
		run = s.runSimulateJob(req.Simulate)
	default:
		return "", nil, nil, badRequest("job needs an analyze or simulate request")
	}
	if req.Kind != "" && req.Kind != kind {
		return "", nil, nil, badRequest("kind %q does not match the %s request given", req.Kind, kind)
	}
	return kind, run, canonical, nil
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	doc := struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}{Jobs: s.jobs.List()}
	b, _ := json.MarshalIndent(doc, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// handleJob serves one job: GET returns its snapshot, DELETE cancels it.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		j, err := s.jobs.Get(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error(), ReasonJobNotFound)
			return
		}
		writeSnapshot(w, http.StatusOK, j.Snapshot())
	case http.MethodDelete:
		j, err := s.jobs.Cancel(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error(), ReasonJobNotFound)
			return
		}
		writeSnapshot(w, http.StatusOK, j.Snapshot())
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET or DELETE", ReasonMethodNotAllowed)
	}
}

// handleJobStream replays a job's ordered event history and follows the
// live tail until the terminal event, as NDJSON by default or SSE when
// the client asks for text/event-stream. A client connecting at any
// point sees the identical gapless sequence from seq 0.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET", ReasonMethodNotAllowed)
		return
	}
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error(), ReasonJobNotFound)
		return
	}
	history, live, cancel := j.Subscribe()
	defer cancel()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(ev jobs.Event) {
		line, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "data: %s\n\n", line)
		} else {
			fmt.Fprintf(w, "%s\n", line)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, ev := range history {
		emit(ev)
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			emit(ev)
		}
	}
}

// readJSON reads a bounded request body.
func readJSON(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, max))
	if err != nil {
		return nil, fmt.Errorf("reading job request: %v", err)
	}
	return raw, nil
}

func writeSnapshot(w http.ResponseWriter, status int, snap jobs.Snapshot) {
	b, _ := json.MarshalIndent(snap, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// MCPartial is the partial-result document attached to an analyze job's
// progress events: the Monte-Carlo estimate so far for the tree being
// swept. MaxSkew is a running maximum (monotone non-decreasing by
// construction); the quantiles are batched stats.Percentiles over every
// trial so far, and CI95 is the normal-approximation half-width of the
// mean's 95% confidence interval — the number that tightens as trials
// accumulate.
type MCPartial struct {
	Tree        string  `json:"tree"`
	TrialsDone  int     `json:"trials_done"`
	TrialsTotal int     `json:"trials_total"`
	MaxSkew     float64 `json:"max_skew"`
	Mean        float64 `json:"mean"`
	P50         float64 `json:"p50"`
	P90         float64 `json:"p90"`
	P99         float64 `json:"p99"`
	CI95        float64 `json:"ci95_halfwidth"`
}

func mcPartial(tree string, samples []float64, total int) json.RawMessage {
	qs := stats.Percentiles(samples, 50, 90, 99)
	mean := stats.Mean(samples)
	ci := 0.0
	if n := len(samples); n > 1 {
		ci = 1.96 * stats.StdDev(samples) / math.Sqrt(float64(n))
	}
	doc := MCPartial{
		Tree: tree, TrialsDone: len(samples), TrialsTotal: total,
		MaxSkew: stats.Max(samples), Mean: mean,
		P50: qs[0], P90: qs[1], P99: qs[2], CI95: ci,
	}
	b, _ := json.Marshal(doc)
	return b
}

// StreamedPartial is the partial-result document attached to a job's
// progress events while a tree runs on the streamed fallback path:
// shard-level progress plus the statistics so far. MaxSkew is a running
// exact maximum over the pairs scanned; the quantiles come from the
// partially merged sketch and tighten as shards fold in.
type StreamedPartial struct {
	Tree       string  `json:"tree"`
	Streamed   bool    `json:"streamed"`
	PairsDone  int64   `json:"pairs_done"`
	PairsTotal int64   `json:"pairs_total"`
	ShardsDone int     `json:"shards_done"`
	Shards     int     `json:"shards"`
	MaxSkew    float64 `json:"max_skew"`
	P50        float64 `json:"p50"`
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`
}

func streamedPartial(tree string, p skew.StreamPartial) json.RawMessage {
	doc := StreamedPartial{
		Tree: tree, Streamed: true,
		PairsDone: p.PairsDone, PairsTotal: p.PairsTotal,
		ShardsDone: p.ShardsDone, Shards: p.Shards,
		MaxSkew: p.MaxSkew, P50: p.P50, P90: p.P90, P99: p.P99,
	}
	b, _ := json.Marshal(doc)
	return b
}

// runAnalyzeJob is the analyze job body: the same analysis as POST
// /v1/analyze — same kernels, same per-trial RNG forks, bit-identical
// Monte-Carlo maximum — but with the trials chunked so progress and
// partial quantiles stream while the sweep runs.
func (s *Server) runAnalyzeJob(req *AnalyzeRequest, chunk int) jobs.RunFunc {
	return func(ctx context.Context, job *jobs.Job) (json.RawMessage, string, error) {
		g, err := req.build()
		if err != nil {
			return nil, reasonOf(err), err
		}
		model, err := req.Model.build()
		if err != nil {
			return nil, reasonOf(err), err
		}
		if req.MonteCarloTrials < 0 || req.MonteCarloTrials > 1<<20 {
			err := badRequest("montecarlo_trials must be in [0, %d], got %d", 1<<20, req.MonteCarloTrials)
			return nil, reasonOf(err), err
		}
		trials := req.MonteCarloTrials
		totalTrials := trials * len(req.Trees)
		doneTrials := 0
		resp := AnalyzeResponse{Graph: g.Name, Cells: g.NumCells(), Model: model.Name()}
		for _, treeName := range req.Trees {
			if err := ctx.Err(); err != nil {
				return nil, "", err
			}
			out := TreeAnalysis{Tree: treeName}
			k, err := s.kernelFor(g, treeName, req.Equalize, req.BufferSpacing)
			if err != nil {
				// Mirror computeAnalyze: an oversize array falls back to the
				// streamed path — publishing shard-level partials as the scan
				// runs — or, with the fallback disabled, fails the job with
				// its typed reason. A mere builder mismatch reports inline
				// and the sweep continues.
				var he *httpError
				if errors.As(err, &he) && he.status == http.StatusRequestEntityTooLarge {
					if s.cfg.NoStreamedFallback {
						return nil, ReasonArrayTooLarge, err
					}
					sa, err := s.streamedTreeAnalysis(ctx, g, treeName, req, model, func(p skew.StreamPartial) {
						job.Publish(doneTrials, totalTrials, streamedPartial(treeName, p))
					})
					if err != nil {
						return nil, reasonOf(err), err
					}
					resp.Results = append(resp.Results, sa)
					doneTrials += trials
					continue
				}
				out.Error = err.Error()
				resp.Results = append(resp.Results, out)
				doneTrials += trials
				continue
			}
			tree := k.Tree()
			analysis := k.Analyze(model)
			out.Nodes = tree.NumNodes()
			out.Buffers = tree.BufferCount()
			out.TotalWireLength = tree.TotalWireLength()
			out.MaxSkew = analysis.MaxSkew
			out.WorstPair = [2]int{int(analysis.WorstPair.A), int(analysis.WorstPair.B)}
			out.MaxD, out.MaxS = analysis.MaxD, analysis.MaxS
			out.Pairs = analysis.Pairs
			out.GuaranteedMinSkew = k.GuaranteedMinSkew(model)
			if trials > 0 {
				m := skew.Linear{M: req.Model.M, Eps: req.Model.Eps}
				if err := m.Validate(); err != nil {
					return nil, ReasonUnprocessable, unprocessable(err)
				}
				rng := stats.NewRNG(req.Seed)
				samples := make([]float64, 0, trials)
				for start := 0; start < trials; start += chunk {
					if err := ctx.Err(); err != nil {
						return nil, "", err
					}
					end := start + chunk
					if end > trials {
						end = trials
					}
					_, cs := obs.Start(ctx, "job.mc_chunk",
						obs.String("tree", treeName), obs.Int("trials", int64(end-start)))
					chunkStart := time.Now()
					// Forking the RNG by absolute trial index makes the
					// chunked sweep reproduce Kernel.MonteCarlo bit for bit.
					for i := start; i < end; i++ {
						samples = append(samples, k.Trial(m, rng.Fork(int64(i))))
					}
					if sec := time.Since(chunkStart).Seconds(); sec > 0 {
						s.metrics.jobTrials.Observe(float64(end-start)/sec, cs.TraceID())
					}
					cs.End()
					doneTrials += end - start
					job.Publish(doneTrials, totalTrials, mcPartial(treeName, samples, trials))
				}
				out.MonteCarloMaxSkew = stats.Max(samples)
			}
			if req.CertifiedLowerBound && g.Kind == comm.KindMesh {
				cert, err := skew.MeshCertifiedLowerBound(g, tree, req.Model.Eps)
				if err != nil {
					out.Error = err.Error()
				} else {
					out.CertifiedLowerBound = cert.Bound
				}
			}
			resp.Results = append(resp.Results, out)
		}
		b, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			return nil, "", err
		}
		return append(b, '\n'), "", nil
	}
}

// runSimulateJob is the simulate job body: the exact computeSimulate
// path (single form or batch), run to completion in the background. It
// emits no intermediate partials — simulation sweeps amortize through
// the batch form — but gains the job API's cancellation, retention, and
// result polling.
func (s *Server) runSimulateJob(req *SimulateRequest) jobs.RunFunc {
	return func(ctx context.Context, job *jobs.Job) (json.RawMessage, string, error) {
		// The job context has no HTTP deadline; apply the server's max so
		// a runaway sweep cannot pin a worker slot forever.
		ctx, cancel := context.WithTimeout(ctx, s.cfg.MaxDeadline)
		defer cancel()
		res, err := s.computeSimulate(ctx, req)
		if err != nil {
			return nil, reasonOf(err), err
		}
		if res.status != http.StatusOK {
			return nil, ReasonInternal, fmt.Errorf("simulate answered status %d", res.status)
		}
		return json.RawMessage(res.body), "", nil
	}
}
