// Cluster mode: the glue between the HTTP serving flow and the
// internal/cluster primitives. A clustered syncd routes every cacheable
// request on a consistent-hash ring over content-addressed keys —
// kernel-affinity keys where the endpoint has one — serving locally when
// it owns the key and forwarding (with a tail-latency hedge to the next
// ring successor) when a peer does. A peer-computed 200 fills the local
// result cache on the way through, and /v1/cluster/fill accepts pushed
// entries so a draining node can hand its cache to the survivors.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// ClusterConfig joins a server to a static peer group.
type ClusterConfig struct {
	// Self is this node's own base URL as it appears to peers
	// (e.g. "http://127.0.0.1:8080"). Required.
	Self string
	// Peers are the other members' base URLs. Self is added to the ring
	// automatically; listing it again is harmless.
	Peers []string
	// Replicas is the ring's virtual-node count per member.
	// <= 0 takes cluster.DefaultReplicas.
	Replicas int
	// HedgePolicy controls the forwarding hedge. The zero value disables
	// hedging; set Adaptive for the latency-percentile-derived delay.
	HedgePolicy cluster.HedgePolicy
	// HealthInterval is the peer probe period. <= 0 takes 1s.
	HealthInterval time.Duration
	// Client, when set, issues all peer traffic (forwards, probes,
	// fills). Default: a client with a 2-minute timeout.
	Client *http.Client
}

// clusterState is a Server's runtime view of its peer group.
type clusterState struct {
	self    string
	ring    *cluster.Ring
	health  *cluster.Health
	fwd     *cluster.Forwarder
	client  *http.Client
	started bool
}

func newClusterState(cfg ClusterConfig) (*clusterState, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("service: cluster config needs Self")
	}
	ring, err := cluster.NewRing(append([]string{cfg.Self}, cfg.Peers...), cfg.Replicas)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	cs := &clusterState{
		self:   cfg.Self,
		ring:   ring,
		health: cluster.NewHealth(ring.Nodes(), cfg.Self, cfg.HealthInterval, client),
		fwd:    cluster.NewForwarder(client, cfg.HedgePolicy),
		client: client,
	}
	if len(ring.Nodes()) > 1 {
		cs.health.Start()
		cs.started = true
	}
	return cs, nil
}

func (c *clusterState) stop() {
	if c.started {
		c.health.Stop()
		c.started = false
	}
}

// targets returns the forward targets for routeKey: nil when this node
// should serve locally (it owns the key, or no peer is alive), otherwise
// up to two alive peers in ring order — the owner first, then the hedge
// target (the node that would own the key if the owner left).
func (c *clusterState) targets(routeKey string) []string {
	if c.ring.Owner(routeKey) == c.self {
		return nil
	}
	succ := c.ring.Successors(routeKey, len(c.ring.Nodes()))
	out := make([]string, 0, 2)
	for _, n := range succ {
		if n == c.self || !c.health.Alive(n) {
			continue
		}
		out = append(out, n)
		if len(out) == 2 {
			break
		}
	}
	return out
}

// serveForwarded relays the request to targets and serves the winning
// response, filling the local cache from a peer-computed 200. All
// targets failing at the transport layer answers 502 peer_unreachable.
func (s *Server) serveForwarded(ctx context.Context, w http.ResponseWriter, r *http.Request, endpoint, key string, start time.Time, span *obs.Span, fwd *forwardSpec, targets []string) {
	header := http.Header{}
	if id := requestIDFrom(r.Context()); id != "" {
		header.Set("X-Request-ID", id)
	}
	fres, err := s.cluster.fwd.Do(ctx, fwd.method, fwd.path, fwd.body, header, targets)
	if err != nil {
		s.metrics.forwardErrors.Add(1)
		span.Annotate(obs.String("cluster", "unreachable"))
		s.finish(w, r, endpoint, start, span, response{},
			&httpError{status: http.StatusBadGateway, msg: fmt.Sprintf("cluster: %v", err), reason: ReasonPeerUnreachable}, "")
		return
	}
	s.metrics.forwards.Add(fres.Peer, 1)
	s.metrics.forwardHist.Observe(float64(fres.Latency.Nanoseconds())/1e6, span.TraceID())
	if fres.Hedged {
		s.metrics.hedges.Add(1)
		span.Annotate(obs.String("hedged", "true"))
	}
	if fres.HedgeWon {
		s.metrics.hedgeWins.Add(1)
		span.Annotate(obs.String("hedge_won", "true"))
	}
	res := response{status: fres.Status, contentType: fres.ContentType, body: fres.Body}
	if fres.Status == http.StatusOK {
		// Peer cache-fill: the owner's result becomes a local entry, so
		// the next request for this key is a local hit and each distinct
		// computation happens once cluster-wide.
		s.cache.Put(key, res)
		s.metrics.cacheFill.Add(1)
	}
	w.Header().Set(cluster.ServedByHeader, fres.Peer)
	span.Annotate(obs.String("cluster", "forwarded"), obs.String("served_by", fres.Peer))
	s.finish(w, r, endpoint, start, span, res, nil, "remote")
}

// fillRequest is the body of POST /v1/cluster/fill: one result-cache
// entry pushed by a peer (drain migration, or any future warm-handoff
// path). Body is base64 in the JSON encoding, so SVG and JSON results
// travel identically.
type fillRequest struct {
	Key         string `json:"key"`
	ContentType string `json:"content_type"`
	Body        []byte `json:"body"`
}

// handleClusterFill accepts a pushed cache entry. Only 200 results are
// ever pushed, so the entry is stored as a success response verbatim.
func (s *Server) handleClusterFill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use POST", ReasonMethodNotAllowed)
		return
	}
	// The fill span parents under the pushing node's drain span (via the
	// remote parent ServeHTTP extracted), stitching drains into traces.
	_, span := obs.Start(r.Context(), "serve.fill",
		obs.String("request_id", requestIDFrom(r.Context())))
	defer span.End()
	var req fillRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding fill: %v", err), ReasonBadRequest)
		return
	}
	if req.Key == "" || req.ContentType == "" || len(req.Body) == 0 {
		writeError(w, http.StatusBadRequest, "fill needs key, content_type, and body", ReasonBadRequest)
		return
	}
	s.cache.Put(req.Key, response{status: http.StatusOK, contentType: req.ContentType, body: req.Body})
	s.metrics.cacheFill.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// clusterInfo is the body of GET /v1/cluster/info.
type clusterInfo struct {
	Self         string   `json:"self"`
	Nodes        []string `json:"nodes"`
	Down         []string `json:"down"`
	Replicas     int      `json:"replicas"`
	HedgeEnabled bool     `json:"hedge_enabled"`
	HedgeDelayMS float64  `json:"hedge_delay_ms,omitempty"`
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET", ReasonMethodNotAllowed)
		return
	}
	info := clusterInfo{
		Self:     s.cluster.self,
		Nodes:    s.cluster.ring.Nodes(),
		Down:     s.cluster.health.Down(),
		Replicas: s.cluster.ring.Replicas(),
	}
	if d, ok := s.cluster.fwd.HedgeDelay(); ok {
		info.HedgeEnabled = true
		info.HedgeDelayMS = float64(d.Nanoseconds()) / 1e6
	}
	b, _ := json.MarshalIndent(info, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// DrainToPeers pushes this node's successful result-cache entries to
// their ring owners via /v1/cluster/fill, so a graceful shutdown hands
// its warm cache to the survivors instead of discarding it. Best-effort:
// a peer that refuses an entry costs nothing but that entry. Returns how
// many entries were accepted.
func (s *Server) DrainToPeers(ctx context.Context) int {
	if s.cluster == nil {
		return 0
	}
	// The drain is one traced operation: fills carry its span context and
	// a drain request ID, so receiving nodes' fill spans parent under it
	// in a merged trace and their logs stay greppable.
	ctx = obs.WithTracer(ctx, s.tracer)
	drainID := "drain-" + strconv.FormatInt(s.nextReq.Add(1), 10)
	ctx, span := obs.Start(ctx, "cluster.drain", obs.String("request_id", drainID))
	defer span.End()
	migrated := 0
	for _, e := range s.cache.Entries() {
		if e.Val.status != http.StatusOK {
			continue
		}
		owner := s.cluster.ring.Owner(e.Key)
		if owner == s.cluster.self || !s.cluster.health.Alive(owner) {
			continue
		}
		body, err := json.Marshal(fillRequest{Key: e.Key, ContentType: e.Val.contentType, Body: e.Val.body})
		if err != nil {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/cluster/fill", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", drainID)
		if sc := obs.SpanContextOf(ctx); sc.Valid() {
			req.Header.Set(obs.TraceHeader, sc.String())
		}
		resp, err := s.cluster.client.Do(req)
		if err != nil {
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			migrated++
		}
		if ctx.Err() != nil {
			break
		}
	}
	span.Annotate(obs.Int("migrated", int64(migrated)))
	return migrated
}
