package service

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestShutdownDrainsInFlightRequests models cmd/syncd's SIGTERM path:
// http.Server.Shutdown must let an in-progress computation finish and
// its response reach the client — no request dropped.
func TestShutdownDrainsInFlightRequests(t *testing.T) {
	s := NewServer(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.computeGate = func(string) {
		close(entered)
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/plan", "application/json",
			strings.NewReader(`{"topology":{"kind":"mesh","n":4}}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: string(b), err: err}
	}()
	<-entered // the request is now mid-computation

	// Begin the drain while the request is still in flight, then let the
	// computation finish.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(10 * time.Millisecond) // let Shutdown stop the listener first
	close(release)

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", r.err)
	}
	if r.status != 200 {
		t.Fatalf("in-flight request got status %d during drain: %s", r.status, r.body)
	}
	if !strings.Contains(r.body, "scheme") {
		t.Fatalf("drained response incomplete: %q", r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// New connections after drain must be refused.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server accepted a connection after Shutdown")
	}
}
