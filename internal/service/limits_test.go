package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/skew"
)

// TestKernelLimitsSurfaceAs413 pins the oversize-kernel opt-out
// contract: with the streamed fallback disabled, a request whose
// (graph, tree) kernel would exceed the configured limits fails with
// 413 and the machine-readable reason "array_too_large", instead of
// 500 or an attempted allocation. (With the default fallback enabled,
// oversize analyze requests answer 200 streamed — see stream_test.go.)
func TestKernelLimitsSurfaceAs413(t *testing.T) {
	_, ts := newTestServer(t, Config{
		KernelLimits:       skew.Limits{MaxPairs: 4},
		NoStreamedFallback: true,
	})
	for _, path := range []string{"/v1/analyze", "/v1/simulate"} {
		t.Run(path, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+path, `{"topology":{"kind":"mesh","n":8}}`)
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
			}
			var doc struct {
				Error  string `json:"error"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("error body not JSON: %v: %s", err, body)
			}
			if doc.Reason != "array_too_large" {
				t.Errorf("reason = %q, want array_too_large (body %s)", doc.Reason, body)
			}
			if doc.Error == "" {
				t.Error("413 body missing error message")
			}
		})
	}
}

// TestKernelLimitsSmallArraysUnaffected: the same server must still
// serve arrays under the budget.
func TestKernelLimitsSmallArraysUnaffected(t *testing.T) {
	_, ts := newTestServer(t, Config{
		KernelLimits: skew.Limits{MaxPairs: 1 << 20},
	})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"topology":{"kind":"mesh","n":8}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestKernelLimits413IsNotCachedAsSuccess: a rejected request repeated
// verbatim must be rejected again (and not count as a cache hit of a
// successful compute).
func TestKernelLimits413Repeatable(t *testing.T) {
	_, ts := newTestServer(t, Config{
		KernelLimits:       skew.Limits{MaxPairs: 4},
		NoStreamedFallback: true,
	})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"topology":{"kind":"mesh","n":8}}`)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("attempt %d: status %d, want 413: %s", i, resp.StatusCode, body)
		}
	}
}
