package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// metricsDoc decodes the /metrics document's counters.
type metricsDoc struct {
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	CacheHits  int64   `json:"cache_hits"`
	CacheMiss  int64   `json:"cache_misses"`
	Coalesced  int64   `json:"coalesced"`
	Computes   int64   `json:"computes"`
	InFlight   int64   `json:"in_flight"`
	HitRatio   float64 `json:"cache_hit_ratio"`
	UptimeSecs float64 `json:"uptime_s"`
}

func readMetrics(t *testing.T, base string) metricsDoc {
	t.Helper()
	var m metricsDoc
	getJSON(t, base+"/metrics", &m)
	return m
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/plan", `{"topology":{"kind":"mesh","n":4}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Scheme    string  `json:"scheme"`
		Sigma     float64 `json:"sigma"`
		Period    float64 `json:"period"`
		Rationale string  `json:"rationale"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding plan: %v\n%s", err, body)
	}
	if out.Scheme == "" || out.Rationale == "" {
		t.Fatalf("plan missing scheme or rationale: %s", body)
	}
	if out.Period <= 0 {
		t.Fatalf("plan period %g, want > 0", out.Period)
	}
}

func TestPlanDefaultsShareCacheEntry(t *testing.T) {
	// Omitted fields and spelled-out defaults must canonicalize to the
	// same cache key.
	_, ts := newTestServer(t, Config{})
	r1, _ := postJSON(t, ts.URL+"/v1/plan", `{"topology":{"kind":"ring","n":8}}`)
	r2, _ := postJSON(t, ts.URL+"/v1/plan", `{"m":1,"delta":2,"buffer_spacing":1,"topology":{"kind":"ring","n":8}}`)
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("default-spelled request X-Cache = %q, want hit", got)
	}
}

func TestAnalyzeEndpointAndCacheHitMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"topology":{"kind":"mesh","n":4},"trees":["htree","spine","ladder"],"montecarlo_trials":32,"seed":7,"certified_lower_bound":true}`

	resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding analyze: %v\n%s", err, body)
	}
	if out.Cells != 16 || len(out.Results) != 3 {
		t.Fatalf("got cells=%d results=%d, want 16 and 3", out.Cells, len(out.Results))
	}
	byName := map[string]TreeAnalysis{}
	for _, r := range out.Results {
		byName[r.Tree] = r
	}
	ht := byName["htree"]
	if ht.Error != "" || ht.MaxSkew <= 0 || ht.MonteCarloMaxSkew <= 0 {
		t.Fatalf("htree analysis incomplete: %+v", ht)
	}
	if ht.MonteCarloMaxSkew > ht.MaxSkew {
		t.Fatalf("Monte Carlo skew %g exceeds model bound %g", ht.MonteCarloMaxSkew, ht.MaxSkew)
	}
	if ht.CertifiedLowerBound <= 0 {
		t.Fatalf("expected certified lower bound on a mesh, got %+v", ht)
	}
	// A ladder cannot be built on a 4×4 mesh: the error must be inline,
	// not a request failure.
	if byName["ladder"].Error == "" {
		t.Fatalf("expected inline error for ladder on mesh, got %+v", byName["ladder"])
	}

	before := readMetrics(t, ts.URL)
	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp2.StatusCode != 200 {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("cached response differs from computed response")
	}
	after := readMetrics(t, ts.URL)
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("cache_hits %d → %d, want +1", before.CacheHits, after.CacheHits)
	}
	if after.Computes != before.Computes {
		t.Fatalf("computes %d → %d, cached repeat must not recompute", before.Computes, after.Computes)
	}
}

func TestAnalyzeInlineGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Build the graph JSON via the comm interchange format.
	graph := `{"kind":"linear","name":"linear-4","rows":1,"cols":4,
		"cells":[{"id":0,"row":0,"col":0,"x":0,"y":0},{"id":1,"row":0,"col":1,"x":1,"y":0},
		         {"id":2,"row":0,"col":2,"x":2,"y":0},{"id":3,"row":0,"col":3,"x":3,"y":0}],
		"edges":[{"from":0,"to":1},{"from":1,"to":2},{"from":2,"to":3}]}`
	resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"graph":`+graph+`,"trees":["spine"]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.Cells != 4 || out.Results[0].Error != "" {
		t.Fatalf("inline graph analysis failed: %s", body)
	}
}

func TestSimulateClockEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"topology":{"kind":"mesh","n":4},"tree":"htree","regime":"random","trials":16,"seed":3,
		"params":{"m":1,"eps":0.2,"min_separation":0.5}}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.CommSkew == nil || out.CommSkew.N != 16 {
		t.Fatalf("want 16 skew samples, got %+v", out.CommSkew)
	}
	if out.CommSkew.Max < out.CommSkew.Min {
		t.Fatalf("summary out of order: %+v", out.CommSkew)
	}
	if out.MinPipelinedPeriod <= 0 {
		t.Fatalf("min_pipelined_period missing with min_separation set: %s", body)
	}

	// Same request, same seed → identical body (determinism, not cache):
	// clear the cache effect by using a second server.
	_, ts2 := newTestServer(t, Config{})
	_, body2 := postJSON(t, ts2.URL+"/v1/simulate", req)
	if !bytes.Equal(body, body2) {
		t.Fatalf("same seed produced different simulate responses:\n%s\n%s", body, body2)
	}
}

func TestSimulateHybridWithFaults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"topology":{"kind":"mesh","n":6},"mode":"hybrid","seed":11,
		"hybrid":{"element_size":3,"waves":16},
		"faults":{"DropProb":0.05,"RetransmitTimeout":2,"DelayProb":0.1,"MaxDelay":1}}`
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.Hybrid == nil || out.Hybrid.Elements <= 1 || out.Hybrid.CycleTime <= 0 {
		t.Fatalf("hybrid summary incomplete: %s", body)
	}
	if out.Faults == nil || out.Faults.Dropped+out.Faults.Delayed == 0 {
		t.Fatalf("expected injected faults to be reported, got %s", body)
	}
	if out.Hybrid.MaxStall <= 0 {
		t.Fatalf("faulty run should stall behind clean run, got %+v", out.Hybrid)
	}
}

func TestLayoutEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/layout.svg?kind=mesh&n=4&tree=htree")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("Content-Type %q, want image/svg+xml", ct)
	}
	if !bytes.Contains(body, []byte("<svg")) {
		t.Fatalf("response is not SVG: %.120s", body)
	}

	// The layout cache is content-addressed over the normalized query.
	resp2, err := http.Get(ts.URL + "/v1/layout.svg?tree=htree&kind=mesh&n=4")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("reordered query X-Cache = %q, want hit", got)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantInBody               string
	}{
		{"malformed json", "POST", "/v1/plan", `{"topology":`, 400, "decoding request"},
		{"unknown topology", "POST", "/v1/plan", `{"topology":{"kind":"klein-bottle","n":4}}`, 400, "unknown topology"},
		{"both graph and topology", "POST", "/v1/plan", `{"topology":{"kind":"ring","n":4},"graph":{"kind":"linear","name":"x","rows":1,"cols":2,"cells":[{"id":0,"row":0,"col":0,"x":0,"y":0},{"id":1,"row":0,"col":1,"x":1,"y":0}],"edges":[{"from":0,"to":1}]}}`, 400, "exactly one"},
		{"neither graph nor topology", "POST", "/v1/analyze", `{"trees":["htree"]}`, 400, "needs a topology or a graph"},
		{"unknown tree", "POST", "/v1/analyze", `{"topology":{"kind":"ring","n":4},"trees":[]}`, 200, ""}, // defaults to htree
		{"bad model", "POST", "/v1/analyze", `{"topology":{"kind":"ring","n":4},"model":{"kind":"cubic"}}`, 400, "unknown skew model"},
		{"bad regime", "POST", "/v1/simulate", `{"topology":{"kind":"ring","n":4},"regime":"chaotic"}`, 400, "unknown regime"},
		{"invalid topology size", "POST", "/v1/plan", `{"topology":{"kind":"torus","n":2}}`, 400, "Torus"},
		{"get on post endpoint", "GET", "/v1/plan", "", 405, "method not allowed"},
		{"post on layout", "POST", "/v1/layout.svg", "", 405, "method not allowed"},
		{"layout without kind", "GET", "/v1/layout.svg", "", 400, "kind"},
		{"unbuildable tree", "POST", "/v1/analyze", `{"topology":{"kind":"mesh","n":3},"trees":["bogus"]}`, 200, "unknown tree builder"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, b)
			}
			if tc.wantInBody != "" && !bytes.Contains(b, []byte(tc.wantInBody)) {
				t.Fatalf("body %q does not mention %q", b, tc.wantInBody)
			}
		})
	}
}

func TestDeadlineExceededReturns504(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Hold the computation until its 1ms deadline has long expired; the
	// engines observe the cancelled context and abort.
	s.computeGate = func(string) { time.Sleep(30 * time.Millisecond) }
	resp, body := postJSON(t, ts.URL+"/v1/analyze",
		`{"topology":{"kind":"mesh","n":8},"trees":["htree","spine"],"montecarlo_trials":1024,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	m := readMetrics(t, ts.URL)
	if m.Errors == 0 {
		t.Fatalf("504 should count as an error, metrics: %+v", m)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &out)
	if out.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", out.Status)
	}
}

func TestStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	s := NewServer(Config{LogWriter: &buf})
	ts := httptest.NewServer(s)
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/plan", `{"topology":{"kind":"ring","n":4}}`)
	postJSON(t, ts.URL+"/v1/plan", `{"topology":{"kind":"ring","n":4}}`)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		var rec struct {
			Endpoint string  `json:"endpoint"`
			Status   int     `json:"status"`
			Cache    string  `json:"cache"`
			Duration float64 `json:"duration_ms"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %d is not JSON: %v: %q", i, err, line)
		}
		if rec.Endpoint != "plan" || rec.Status != 200 {
			t.Fatalf("log line %d unexpected: %q", i, line)
		}
	}
	var second struct {
		Cache string `json:"cache"`
	}
	json.Unmarshal([]byte(lines[1]), &second)
	if second.Cache != "hit" {
		t.Fatalf("second request log cache = %q, want hit", second.Cache)
	}
}

func TestMetricsLatencyHistogram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/plan", `{"topology":{"kind":"ring","n":4}}`)
	var doc map[string]json.RawMessage
	getJSON(t, ts.URL+"/metrics", &doc)
	raw, ok := doc["latency_plan"]
	if !ok {
		t.Fatalf("metrics missing latency_plan: %v", doc)
	}
	var h struct {
		Count int     `json:"count"`
		P50   float64 `json:"p50_ms"`
		P95   float64 `json:"p95_ms"`
		P99   float64 `json:"p99_ms"`
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatalf("latency histogram not JSON: %v: %s", err, raw)
	}
	if h.Count != 1 || h.P50 <= 0 || h.P99 < h.P50 {
		t.Fatalf("implausible latency histogram: %+v", h)
	}
}

func TestKernelCacheSharedAcrossSeedsAndEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Same (graph, tree) recipe, different seeds: distinct result-cache
	// keys, one shared kernel.
	for _, req := range []string{
		`{"topology":{"kind":"mesh","n":8},"trees":["htree"],"montecarlo_trials":16,"seed":1}`,
		`{"topology":{"kind":"mesh","n":8},"trees":["htree"],"montecarlo_trials":16,"seed":2}`,
	} {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	if got := s.metrics.kernelMisses.Value(); got != 1 {
		t.Fatalf("kernel misses = %d, want 1 (second analyze should reuse the kernel)", got)
	}
	if got := s.metrics.kernelHits.Value(); got != 1 {
		t.Fatalf("kernel hits = %d, want 1", got)
	}

	// A simulate over the same recipe reuses the same kernel entry.
	resp, body := postJSON(t, ts.URL+"/v1/simulate",
		`{"topology":{"kind":"mesh","n":8},"tree":"htree","regime":"random","trials":4,"seed":3}`)
	if resp.StatusCode != 200 {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
	}
	if got := s.metrics.kernelMisses.Value(); got != 1 {
		t.Fatalf("kernel misses after simulate = %d, want 1", got)
	}
	if got := s.metrics.kernelHits.Value(); got != 2 {
		t.Fatalf("kernel hits after simulate = %d, want 2", got)
	}

	// Both exposition formats report the kernel-cache counters.
	var m struct {
		KernelHits   int64 `json:"kernel_cache_hits"`
		KernelMisses int64 `json:"kernel_cache_misses"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	if m.KernelHits != 2 || m.KernelMisses != 1 {
		t.Fatalf("expvar kernel cache hits/misses = %d/%d, want 2/1", m.KernelHits, m.KernelMisses)
	}
	promResp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, _ := io.ReadAll(promResp.Body)
	for _, want := range []string{
		"kernel_cache_hits_total 2",
		"kernel_cache_misses_total 1",
		"kernel_cache_entries 1",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}

func TestKernelCacheDistinguishesRecipes(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, req := range []string{
		`{"topology":{"kind":"mesh","n":4},"trees":["htree"]}`,
		`{"topology":{"kind":"mesh","n":4},"trees":["htree"],"equalize":true}`,
		`{"topology":{"kind":"mesh","n":4},"trees":["htree"],"buffer_spacing":2}`,
		`{"topology":{"kind":"mesh","n":4},"trees":["spine"]}`,
	} {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	if got := s.metrics.kernelMisses.Value(); got != 4 {
		t.Fatalf("kernel misses = %d, want 4 (every recipe differs)", got)
	}
}
