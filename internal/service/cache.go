package service

import (
	"container/list"
	"sync"
)

// lru is a bounded, thread-safe least-recently-used cache from canonical
// request keys to finished responses. Serving results are pure functions
// of the canonical request (every random stream is seeded from request
// fields), so cached entries never go stale — the bound exists only to
// cap memory.
type lru struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions int64
}

type lruEntry struct {
	key string
	res response
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached response for key, marking it most recent.
func (c *lru) Get(key string) (response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return response{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru) Put(key string, res response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Evictions returns how many entries have been displaced to honor the
// capacity bound over the cache's lifetime.
func (c *lru) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
