package service

import (
	"container/list"
	"sync"
)

// lru is a bounded, thread-safe least-recently-used cache from canonical
// content-addressed keys to values: finished responses on the result
// path, precomputed skew kernels on the engine path. Cached values are
// pure functions of the canonical key (every random stream is seeded
// from request fields), so entries never go stale — the bound exists
// only to cap memory.
type lru[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions int64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recent.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

// Evictions returns how many entries have been displaced to honor the
// capacity bound over the cache's lifetime.
func (c *lru[V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached entries.
func (c *lru[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cachePair is one (key, value) snapshot returned by Entries.
type cachePair[V any] struct {
	Key string
	Val V
}

// Entries returns a snapshot of the cache's contents, most recently
// used first, without disturbing recency. Drain migration walks it to
// push entries to their ring owners.
func (c *lru[V]) Entries() []cachePair[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cachePair[V], 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry[V])
		out = append(out, cachePair[V]{Key: e.key, Val: e.val})
	}
	return out
}
