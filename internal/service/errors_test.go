package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// Every non-200 answer is a typed ErrorBody whose reason is machine-
// readable: clients branch on reason, not on message prose.
func TestErrorBodiesCarryReason(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		status                   int
		reason                   string
	}{
		{"malformed analyze", http.MethodPost, "/v1/analyze", `{"topology":`, 400, ReasonBadRequest},
		{"analyze wrong method", http.MethodGet, "/v1/analyze", "", 405, ReasonMethodNotAllowed},
		{"plan wrong method", http.MethodGet, "/v1/plan", "", 405, ReasonMethodNotAllowed},
		{"simulate wrong method", http.MethodGet, "/v1/simulate", "", 405, ReasonMethodNotAllowed},
		{"jobs wrong method", http.MethodPut, "/v1/jobs", "", 405, ReasonMethodNotAllowed},
		{"job wrong method", http.MethodPut, "/v1/jobs/x", "", 405, ReasonMethodNotAllowed},
		{"stream wrong method", http.MethodPost, "/v1/jobs/x/stream", "", 405, ReasonMethodNotAllowed},
		{"job not found", http.MethodGet, "/v1/jobs/absent", "", 404, ReasonJobNotFound},
		{"empty job", http.MethodPost, "/v1/jobs", `{}`, 400, ReasonBadRequest},
		{"unknown topology", http.MethodPost, "/v1/analyze", `{"topology":{"kind":"blob","n":4}}`, 400, ReasonBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			var eb ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("body is not an ErrorBody: %v", err)
			}
			if eb.Reason != tc.reason {
				t.Fatalf("reason %q, want %q (error %q)", eb.Reason, tc.reason, eb.Error)
			}
			if eb.Error == "" {
				t.Fatal("error message empty")
			}
		})
	}
}

// A batch config that fails inline also lands in the structured log
// with its config index, so sweep failures are greppable without
// re-parsing response bodies.
func TestBatchErrorLoggedWithIndex(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, Config{LogWriter: &buf})
	body := `{"topology":{"kind":"mesh","n":4},"configs":[{"tree":"htree"},{"tree":"nope"}]}`
	resp, respBody := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, respBody)
	}
	var out SimulateBatchResponse
	if err := json.Unmarshal(respBody, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Results[1].Error == "" {
		t.Fatalf("config 1 should fail inline: %s", respBody)
	}
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || !strings.Contains(line, "batch_config_error") {
			continue
		}
		var rec struct {
			Event       string `json:"event"`
			Endpoint    string `json:"endpoint"`
			ConfigIndex int    `json:"config_index"`
			Error       string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if rec.ConfigIndex != 1 || rec.Endpoint != "simulate" || rec.Error == "" {
			t.Fatalf("log line %q: want config_index 1 on endpoint simulate with an error", line)
		}
		found = true
	}
	if !found {
		t.Fatalf("no batch_config_error log line; log was:\n%s", buf.String())
	}
}
