// The streamed analysis path: when a kernel build is rejected for size
// (413 array_too_large), /v1/analyze and analyze jobs transparently fall
// back to skew.Streamer — exact max-skew statistics in bounded memory —
// unless the operator opted out. The response marks the fallback with a
// machine-readable "streamed": true plus sampling metadata, so clients
// can tell an exact-but-sketch-quantile streamed answer from a kernel
// one. Cluster mode can additionally spill shards to peers over
// POST /v1/cluster/shard.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/skew"
)

// buildStreamTree builds the clock tree for a streamed analysis. The
// htree builder (the default, and the only one that scales to the
// arrays that trip the kernel limits) switches to its compact
// representation — parent/depth arrays only, ~56 B/node instead of the
// full wire geometry — unless buffering was requested, which compact
// trees cannot carry. Every other recipe builds exactly as the kernel
// path would.
func buildStreamTree(name string, g *comm.Graph, equalize bool, spacing float64) (*clocktree.Tree, error) {
	if name == "htree" && spacing == 0 {
		t, err := clocktree.HTreeCompact(g)
		if err != nil {
			return nil, unprocessable(err)
		}
		if equalize {
			t.Equalize()
		}
		return t, nil
	}
	return buildTree(name, g, equalize, spacing)
}

// streamerFor returns the cached skew.Streamer for (g, tree recipe),
// building the (compact where possible) tree and streamer on a miss.
// Content-addressed exactly like kernelFor, under a distinct prefix so
// the two caches never alias.
func (s *Server) streamerFor(g *comm.Graph, tree string, equalize bool, spacing float64) (*skew.Streamer, error) {
	canonical, err := canonicalize(&kernelKey{Graph: g, Tree: tree, Equalize: equalize, Spacing: spacing})
	if err != nil {
		return nil, err
	}
	key := cacheKey("streamer", canonical)
	if st, ok := s.streamers.Get(key); ok {
		s.metrics.kernelHits.Add(1)
		return st, nil
	}
	s.metrics.kernelMisses.Add(1)
	t, err := buildStreamTree(tree, g, equalize, spacing)
	if err != nil {
		return nil, err
	}
	st, err := skew.NewStreamer(g, t)
	if err != nil {
		return nil, unprocessable(err)
	}
	s.streamers.Put(key, st)
	return st, nil
}

// streamOptions assembles the server-side StreamOptions for one
// streamed analysis: configured shard size, the request fan-out worker
// budget, the request's Monte-Carlo sampling parameters, and — in
// cluster mode with peer shards enabled — the spill hook.
func (s *Server) streamOptions(treeName string, req *AnalyzeRequest, progress func(skew.StreamPartial)) skew.StreamOptions {
	opt := skew.StreamOptions{
		ShardSize: s.cfg.StreamShardSize,
		Workers:   s.cfg.Workers,
		MCTrials:  req.MonteCarloTrials,
		Seed:      req.Seed,
		Progress:  progress,
	}
	if s.cluster != nil && s.cfg.StreamPeerShards {
		opt.ShardFn = s.peerShardFn(treeName, req)
	}
	return opt
}

// streamedTreeAnalysis runs one candidate tree's analysis over the
// streamed path and reports it in TreeAnalysis form, marked with the
// streamed metadata. It is the 413 fallback: callers reach it only
// after kernelFor rejected the pair count for size.
func (s *Server) streamedTreeAnalysis(ctx context.Context, g *comm.Graph, treeName string, req *AnalyzeRequest, model skew.Model, progress func(skew.StreamPartial)) (TreeAnalysis, error) {
	out := TreeAnalysis{Tree: treeName, Streamed: true}
	st, err := s.streamerFor(g, treeName, req.Equalize, req.BufferSpacing)
	if err != nil {
		// Same inline-vs-typed split as the kernel path: a builder that
		// does not apply reports inline; typed statuses propagate.
		var he *httpError
		if errors.As(err, &he) && he.status >= 500 {
			return out, err
		}
		out.Error = err.Error()
		return out, nil
	}
	s.metrics.streamedFallbacks.Add(1)
	res, err := st.Analyze(ctx, model, s.streamOptions(treeName, req, progress))
	if err != nil {
		return out, err
	}
	s.metrics.streamedShards.Add(int64(res.Shards))
	tree := st.Tree()
	out.Nodes = tree.NumNodes()
	out.Buffers = tree.BufferCount()
	out.TotalWireLength = tree.TotalWireLength()
	out.MaxSkew = res.MaxSkew
	out.WorstPair = [2]int{int(res.WorstPair.A), int(res.WorstPair.B)}
	out.MaxD, out.MaxS = res.MaxD, res.MaxS
	out.Pairs = res.Pairs
	out.GuaranteedMinSkew = res.GuaranteedMinSkew
	out.StreamShards = res.Shards
	out.StreamShardSize = res.ShardSize
	out.SkewP50, out.SkewP90, out.SkewP99 = res.P50, res.P90, res.P99
	out.QuantileRelError = res.QuantileRelError
	out.Sampled = res.Sampled
	if req.CertifiedLowerBound && g.Kind == comm.KindMesh {
		// The certified bound needs a full tree; on the compact trees the
		// streamed path prefers, it reports its inapplicability inline
		// rather than silently vanishing.
		cert, err := skew.MeshCertifiedLowerBound(g, tree, req.Model.Eps)
		if err != nil {
			out.Error = err.Error()
		} else {
			out.CertifiedLowerBound = cert.Bound
		}
	}
	return out, nil
}

// ------------------------------------------------------- cluster spill

// shardRequest is the body of POST /v1/cluster/shard: one shard of a
// streamed analysis computed on behalf of a peer. The graph and tree
// recipe identify the (cached) streamer; [lo, hi) names the pair block.
type shardRequest struct {
	GraphInput
	Tree     string    `json:"tree"`
	Equalize bool      `json:"equalize,omitempty"`
	Spacing  float64   `json:"spacing,omitempty"`
	Model    ModelSpec `json:"model"`
	Lo       int64     `json:"lo"`
	Hi       int64     `json:"hi"`
}

// handleClusterShard serves one shard's exact statistics. Peers call it
// to spill streamed-shard work across the ring; the response is a
// skew.ShardStats document whose sketch merges bit-identically into the
// caller's fold.
func (s *Server) handleClusterShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use POST", ReasonMethodNotAllowed)
		return
	}
	_, span := obs.Start(r.Context(), "serve.cluster_shard",
		obs.String("request_id", requestIDFrom(r.Context())))
	defer span.End()
	var req shardRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding shard request: %v", err), ReasonBadRequest)
		return
	}
	req.Model.applyDefaults()
	g, err := req.build()
	if err != nil {
		writeError(w, statusOf(err), err.Error(), reasonOf(err))
		return
	}
	model, err := req.Model.build()
	if err != nil {
		writeError(w, statusOf(err), err.Error(), reasonOf(err))
		return
	}
	if req.Tree == "" {
		req.Tree = "htree"
	}
	st, err := s.streamerFor(g, req.Tree, req.Equalize, req.Spacing)
	if err != nil {
		writeError(w, statusOf(err), err.Error(), reasonOf(err))
		return
	}
	ss, err := st.ShardStats(model, req.Lo, req.Hi)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), ReasonBadRequest)
		return
	}
	span.Annotate(obs.Int("lo", req.Lo), obs.Int("hi", req.Hi))
	s.metrics.streamedShards.Add(1)
	b, err := json.Marshal(ss)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), ReasonInternal)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// peerShardFn returns the StreamOptions.ShardFn that spills shards to
// their ring owners: each shard routes by (streamer identity, shard
// index), shards owned by this node — or whose owner is down, or whose
// call fails — return false and compute locally. Best-effort by design:
// spill never changes results, only where the arithmetic runs.
func (s *Server) peerShardFn(treeName string, req *AnalyzeRequest) func(ctx context.Context, lo, hi int64) (skew.ShardStats, bool) {
	body := shardRequest{
		GraphInput: req.GraphInput,
		Tree:       treeName, Equalize: req.Equalize, Spacing: req.BufferSpacing,
		Model: req.Model,
	}
	id := routeIdentity{Input: req.GraphInput, Kind: "kernel", Tree: treeName, Equalize: req.Equalize, Spacing: req.BufferSpacing}
	base, ok := id.key()
	if !ok {
		return nil
	}
	return func(ctx context.Context, lo, hi int64) (skew.ShardStats, bool) {
		owner := s.cluster.ring.Owner(fmt.Sprintf("%s/shard/%d", base, lo))
		if owner == s.cluster.self || !s.cluster.health.Alive(owner) {
			return skew.ShardStats{}, false
		}
		body.Lo, body.Hi = lo, hi
		raw, err := json.Marshal(body)
		if err != nil {
			return skew.ShardStats{}, false
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/cluster/shard", bytes.NewReader(raw))
		if err != nil {
			return skew.ShardStats{}, false
		}
		hreq.Header.Set("Content-Type", "application/json")
		if sc := obs.SpanContextOf(ctx); sc.Valid() {
			hreq.Header.Set(obs.TraceHeader, sc.String())
		}
		resp, err := s.cluster.client.Do(hreq)
		if err != nil {
			return skew.ShardStats{}, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return skew.ShardStats{}, false
		}
		var ss skew.ShardStats
		if err := json.NewDecoder(resp.Body).Decode(&ss); err != nil {
			return skew.ShardStats{}, false
		}
		if ss.Lo != lo || ss.Hi != hi || ss.Sketch == nil {
			return skew.ShardStats{}, false
		}
		s.metrics.streamedSpills.Add(1)
		return ss, true
	}
}

// kernelBytesInUse estimates the resident bytes of every cached engine
// precomputation on the skew path — kernels (40 B/pair class) and
// streamers (8 B/pair class) — the gauge operators watch against the
// configured kernel byte budget.
func (s *Server) kernelBytesInUse() int64 {
	var total int64
	for _, e := range s.kernels.Entries() {
		total += e.Val.FootprintBytes()
	}
	for _, e := range s.streamers.Entries() {
		total += e.Val.FootprintBytes()
	}
	return total
}
