package service

import (
	"bytes"
	"expvar"
	"sort"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/runner"
)

// promFamilies assembles the server's metric families for the
// Prometheus text exposition served at GET /metrics?format=prom: the
// expvar counters under their conventional *_total names, the cache and
// worker-pool gauges, and one summary family with per-endpoint latency
// quantiles.
func (s *Server) promFamilies() []obs.PromMetric {
	m := s.metrics
	counter := func(name, help string, v int64) obs.PromMetric {
		return obs.PromMetric{Name: name, Help: help, Type: "counter",
			Samples: []obs.PromSample{{Value: float64(v)}}}
	}
	gauge := func(name, help string, v float64) obs.PromMetric {
		return obs.PromMetric{Name: name, Help: help, Type: "gauge",
			Samples: []obs.PromSample{{Value: v}}}
	}
	fams := []obs.PromMetric{
		counter("requests_total", "HTTP requests served, any outcome.", m.requests.Value()),
		counter("errors_total", "Requests answered with a non-2xx status.", m.errors.Value()),
		counter("cache_hits_total", "Responses served from the result cache.", m.hits.Value()),
		counter("cache_misses_total", "Responses computed by their own request (leaders).", m.misses.Value()),
		counter("cache_evictions_total", "Cache entries displaced by the capacity bound.", s.cache.Evictions()),
		counter("coalesced_total", "Responses shared from another in-flight request.", m.coalesced.Value()),
		counter("computes_total", "Underlying engine executions.", m.computes.Value()),
		counter("kernel_cache_hits_total", "Skew-kernel cache hits (precomputed geometry reused).", m.kernelHits.Value()),
		counter("kernel_cache_misses_total", "Skew-kernel cache misses (tree and kernel built).", m.kernelMisses.Value()),
		counter("kernel_cache_evictions_total", "Kernel cache entries displaced by the capacity bound.", s.kernels.Evictions()),
		counter("sim_kernel_cache_hits_total", "Simulation-kernel cache hits (clocksim kernel or hybrid system reused).", m.simKernelHits.Value()),
		counter("sim_kernel_cache_misses_total", "Simulation-kernel cache misses (engine precomputation built).", m.simKernelMisses.Value()),
		counter("streamed_fallback_total", "Analyses served by the streamed path after a 413-size kernel rejection.", m.streamedFallbacks.Value()),
		counter("streamed_shards_total", "Pair shards processed by the streamed path (local and on behalf of peers).", m.streamedShards.Value()),
		counter("streamed_spills_total", "Shards spilled to a ring-owning peer over /v1/cluster/shard.", m.streamedSpills.Value()),
		gauge("in_flight", "Requests currently being served.", float64(m.inFlight.Value())),
		gauge("cache_entries", "Entries currently in the result cache.", float64(s.cache.Len())),
		gauge("kernel_cache_entries", "Entries currently in the skew-kernel cache.", float64(s.kernels.Len())),
		gauge("kernel_bytes_in_use", "Estimated resident bytes of every cached skew kernel and streamer.", float64(s.kernelBytesInUse())),
		gauge("streamer_cache_entries", "Entries currently in the streamed-analysis streamer cache.", float64(s.streamers.Len())),
		gauge("sim_kernel_cache_entries", "Entries currently in the simulation-kernel caches.", float64(s.simKernels.Len()+s.hybridSystems.Len())),
		gauge("uptime_seconds", "Seconds since the server started.", time.Since(m.start).Seconds()),
	}
	ps := runner.Stats()
	fams = append(fams,
		counter("runner_tasks_started_total", "Worker-pool tasks started, process-wide.", ps.TasksStarted),
		counter("runner_tasks_done_total", "Worker-pool tasks finished, process-wide.", ps.TasksDone),
		gauge("runner_busy_workers", "Worker-pool tasks executing right now.", float64(ps.BusyWorkers)),
		gauge("runner_queue_depth", "Dispatched tasks waiting for a worker.", float64(ps.QueueDepth)),
	)
	if s.cluster != nil {
		fwd := obs.PromMetric{
			Name: "cluster_forward_total",
			Help: "Requests forwarded to their owning peer, by peer.",
			Type: "counter",
		}
		m.forwards.Do(func(kv expvar.KeyValue) {
			if v, ok := kv.Value.(*expvar.Int); ok {
				fwd.Samples = append(fwd.Samples, obs.PromSample{
					Labels: obs.Label("peer", kv.Key), Value: float64(v.Value())})
			}
		})
		if len(fwd.Samples) == 0 {
			fwd.Samples = []obs.PromSample{{Value: 0}}
		}
		fams = append(fams, fwd,
			counter("cluster_forward_errors_total", "Forwards with no reachable target (answered 502 peer_unreachable).", m.forwardErrors.Value()),
			counter("cluster_hedge_total", "Forwards whose hedge copy was sent.", m.hedges.Value()),
			counter("cluster_hedge_wins_total", "Forwards whose hedge copy answered first.", m.hedgeWins.Value()),
			counter("cluster_cache_fill_total", "Local result-cache entries filled from a peer.", m.cacheFill.Value()),
			gauge("cluster_peers_down", "Peers currently failing health probes.", float64(len(s.cluster.health.Down()))),
			obs.PromMetric{
				Name:    "cluster_forward_duration_ms",
				Help:    "Forward (including hedge) round-trip latency in milliseconds; buckets sum across nodes.",
				Type:    "histogram",
				Samples: obs.HistogramSamples(nil, m.forwardHist.Snapshot()),
			},
		)
	}
	if s.jobs != nil {
		states := obs.PromMetric{
			Name: "jobs_by_state",
			Help: "Tracked jobs by lifecycle state.",
			Type: "gauge",
		}
		stats := s.jobs.Stats()
		for _, st := range []jobs.State{jobs.Pending, jobs.Running, jobs.Done, jobs.Failed, jobs.Canceled} {
			states.Samples = append(states.Samples, obs.PromSample{
				Labels: obs.Label("state", string(st)), Value: float64(stats[st])})
		}
		counts := s.jobs.Counts()
		fams = append(fams, states,
			counter("jobs_created_total", "Jobs accepted by POST /v1/jobs.", m.jobsCreated.Value()),
			gauge("jobs_pending", "Jobs admitted but not yet running.", float64(counts.Pending)),
			gauge("jobs_running", "Jobs currently executing.", float64(counts.Running)),
			counter("jobs_done_total", "Jobs that completed successfully (survives retention).", counts.DoneTotal),
			counter("jobs_failed_total", "Jobs that ended in failure (survives retention).", counts.FailedTotal),
			counter("jobs_canceled_total", "Jobs canceled before or during execution (survives retention).", counts.CanceledTotal),
			obs.PromMetric{
				Name:    "job_trials_per_second",
				Help:    "Per-chunk Monte-Carlo throughput of analyze jobs, trials per second.",
				Type:    "histogram",
				Samples: obs.HistogramSamples(nil, m.jobTrials.Snapshot()),
			},
		)
	}

	lat := obs.PromMetric{
		Name: "request_latency_ms",
		Help: "Request latency in milliseconds by endpoint (quantiles over the recent window).",
		Type: "summary",
	}
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.latencies))
	for ep := range m.latencies {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	hists := make([]*latencyVar, len(endpoints))
	for i, ep := range endpoints {
		hists[i] = m.latencies[ep]
	}
	hepoints := make([]string, 0, len(m.histories))
	for ep := range m.histories {
		hepoints = append(hepoints, ep)
	}
	sort.Strings(hepoints)
	buckets := make([]*obs.Histogram, len(hepoints))
	for i, ep := range hepoints {
		buckets[i] = m.histories[ep]
	}
	m.mu.Unlock()
	for i, ep := range endpoints {
		count, sum, p50, p95, p99 := hists[i].summary()
		lat.Samples = append(lat.Samples, obs.SummarySamples(
			obs.Label("endpoint", ep),
			map[string]float64{"0.5": p50, "0.95": p95, "0.99": p99},
			sum, count)...)
	}
	fams = append(fams, lat)
	dur := obs.PromMetric{
		Name: "request_duration_ms",
		Help: "Request latency in milliseconds by endpoint (fixed buckets with trace exemplars; sums across nodes).",
		Type: "histogram",
	}
	for i, ep := range hepoints {
		dur.Samples = append(dur.Samples,
			obs.HistogramSamples(obs.Label("endpoint", ep), buckets[i].Snapshot())...)
	}
	if len(dur.Samples) > 0 {
		fams = append(fams, dur)
	}
	return fams
}

// promSnapshot renders the families in the text exposition format.
func (s *Server) promSnapshot() []byte {
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, s.promFamilies()); err != nil {
		// Family names are compile-time constants, so this is unreachable;
		// degrade to an exposition comment rather than a broken scrape.
		return []byte("# metrics rendering failed: " + err.Error() + "\n")
	}
	return buf.Bytes()
}
