package service

import "testing"

func res(s string) response { return jsonResponse([]byte(s)) }

func TestLRUBasics(t *testing.T) {
	c := newLRU[response](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", res("1"))
	c.Put("b", res("2"))
	if got, ok := c.Get("a"); !ok || string(got.body) != "1" {
		t.Fatalf("Get(a) = %q, %v", got.body, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU[response](2)
	c.Put("a", res("1"))
	c.Put("b", res("2"))
	c.Get("a") // a is now more recent than b
	c.Put("c", res("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was recently used and must survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c was just inserted and must survive")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUPutRefreshes(t *testing.T) {
	c := newLRU[response](2)
	c.Put("a", res("1"))
	c.Put("b", res("2"))
	c.Put("a", res("1'")) // refresh both value and recency
	c.Put("c", res("3"))  // evicts b, not a
	if got, ok := c.Get("a"); !ok || string(got.body) != "1'" {
		t.Fatalf("Get(a) = %q, %v; want refreshed value", got.body, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := newLRU[response](0) // clamped to 1
	c.Put("a", res("1"))
	c.Put("b", res("2"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("most recent entry must survive in a capacity-1 cache")
	}
}
