package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
)

// EncodePlan writes the canonical JSON encoding of a plan: the
// PlanSummary, indented, with a trailing newline. It is the single code
// path behind `cmd/planner -json` and the service's POST /v1/plan, so
// the CLI and the API can never drift apart.
func EncodePlan(w io.Writer, p *core.Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Summary())
}

// canonicalize re-encodes a decoded request value into its canonical
// byte form: encoding/json emits struct fields in declaration order and
// map keys sorted, so two bodies that decode to the same request —
// regardless of field order, whitespace, or unknown fields — produce
// identical bytes, and therefore the same cache key.
func canonicalize(req any) ([]byte, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: canonicalizing request: %w", err)
	}
	return b, nil
}

// cacheKey derives the content address of a request: SHA-256 over the
// endpoint name and the canonical request bytes.
func cacheKey(endpoint string, canonical []byte) string {
	h := sha256.New()
	io.WriteString(h, endpoint)
	h.Write([]byte{0})
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil))
}
