package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// testCluster is n clustered servers behind httptest listeners, each
// configured with the full peer list.
type testCluster struct {
	servers []*Server
	urls    []string
}

func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{servers: make([]*Server, n), urls: make([]string, n)}
	// The listeners must exist before the servers, because every server's
	// config names all peer URLs; an indirect handler breaks the cycle.
	for i := 0; i < n; i++ {
		i := i
		h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tc.servers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(h.Close)
		tc.urls[i] = h.URL
	}
	for i := 0; i < n; i++ {
		peers := make([]string, 0, n-1)
		for j, u := range tc.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{Cluster: &ClusterConfig{
			Self:           tc.urls[i],
			Peers:          peers,
			HealthInterval: time.Hour, // probes by hand in tests
			HedgePolicy:    cluster.HedgePolicy{HedgeAfter: 500 * time.Millisecond},
		}}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := NewClusterServer(cfg)
		if err != nil {
			t.Fatalf("NewClusterServer: %v", err)
		}
		t.Cleanup(s.Close)
		tc.servers[i] = s
	}
	return tc
}

// analyzeBody is a small kernel-bearing request; seed varies the result
// key while the kernel-affinity key stays fixed.
func analyzeBody(seed int) string {
	return analyzeBodyN(6, seed)
}

// analyzeBodyN also varies the mesh side, which varies the kernel
// recipe and therefore the affinity key — for tests that need a key
// owned by one specific node.
func analyzeBodyN(n, seed int) string {
	return fmt.Sprintf(`{"topology":{"kind":"mesh","n":%d},"trees":["htree"],"montecarlo_trials":8,"seed":%d}`, n, seed)
}

// bodyOwnedBy finds an analyze body whose kernel-affinity key the ring
// assigns to node, probing mesh sides.
func bodyOwnedBy(t *testing.T, ring interface{ Owner(string) string }, node string) string {
	t.Helper()
	for n := 4; n < 64; n++ {
		body := analyzeBodyN(n, 1)
		req := &AnalyzeRequest{}
		if err := json.Unmarshal([]byte(body), req); err != nil {
			t.Fatal(err)
		}
		req.applyDefaults()
		route, ok := req.affinityKey()
		if !ok {
			t.Fatal("analyze request must have an affinity key")
		}
		if ring.Owner(route) == node {
			return body
		}
	}
	t.Fatalf("no probed mesh side owned by %s (vanishingly unlikely)", node)
	return ""
}

// Every request sharing a kernel must land on one node: posting the same
// recipe (different seeds) through different entry nodes builds the
// kernel exactly once cluster-wide, and the forwarding node's cache is
// filled from the peer's response.
func TestClusterSingleKernelBuild(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	for seed := 1; seed <= 6; seed++ {
		entry := tc.urls[seed%3]
		resp, body := postJSON(t, entry+"/v1/analyze", analyzeBody(seed))
		if resp.StatusCode != 200 {
			t.Fatalf("seed %d via %s: status %d: %s", seed, entry, resp.StatusCode, body)
		}
	}
	var builds, fills int64
	for i, s := range tc.servers {
		builds += s.metrics.kernelMisses.Value()
		fills += s.metrics.cacheFill.Value()
		t.Logf("node %d: kernel_misses=%d cache_fill=%d", i, s.metrics.kernelMisses.Value(), s.metrics.cacheFill.Value())
	}
	if builds != 1 {
		t.Fatalf("kernel built %d times cluster-wide, want exactly 1", builds)
	}
	// Unless the owner happened to be every entry node, at least one
	// request was forwarded and filled a local cache.
	if fills == 0 {
		t.Fatal("no peer cache-fill happened; forwarding is not filling local caches")
	}
}

// A forwarded 200 fills the entry node's cache: the identical request
// repeated through the same non-owner node is a local hit with no
// second forward.
func TestClusterForwardFillsLocalCache(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	body := analyzeBody(42)
	// Find the entry node that does NOT own the request's kernel key.
	req := &AnalyzeRequest{}
	if err := json.Unmarshal([]byte(body), req); err != nil {
		t.Fatal(err)
	}
	req.applyDefaults()
	route, ok := req.affinityKey()
	if !ok {
		t.Fatal("analyze request must have an affinity key")
	}
	owner := tc.servers[0].cluster.ring.Owner(route)
	entry := 0
	if tc.urls[0] == owner {
		entry = 1
	}

	resp1, _ := postJSON(t, tc.urls[entry]+"/v1/analyze", body)
	if resp1.StatusCode != 200 {
		t.Fatalf("first request: status %d", resp1.StatusCode)
	}
	if got := resp1.Header.Get(cluster.ServedByHeader); got != owner {
		t.Fatalf("served-by %q, want owner %q", got, owner)
	}
	if resp1.Header.Get("X-Cache") != "remote" {
		t.Fatalf("X-Cache %q, want remote", resp1.Header.Get("X-Cache"))
	}
	resp2, _ := postJSON(t, tc.urls[entry]+"/v1/analyze", body)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat X-Cache %q, want a local hit after cache-fill", resp2.Header.Get("X-Cache"))
	}
	if n := tc.servers[entry].metrics.cacheFill.Value(); n != 1 {
		t.Fatalf("cluster_cache_fill_total = %d, want 1", n)
	}
}

// A request whose owner (and every other peer) is unreachable answers
// 502 with the machine-readable reason peer_unreachable.
func TestClusterPeerUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	s, err := NewClusterServer(Config{Cluster: &ClusterConfig{
		Self:           "http://127.0.0.1:1", // never dialed: requests enter via ServeHTTP
		Peers:          []string{dead.URL},
		HealthInterval: time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// A request the dead peer owns must forward, fail, and answer 502.
	body := bodyOwnedBy(t, s.cluster.ring, dead.URL)
	resp, respBody := postJSON(t, ts.URL+"/v1/analyze", body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", resp.StatusCode, respBody)
	}
	var eb ErrorBody
	if err := json.Unmarshal(respBody, &eb); err != nil {
		t.Fatalf("502 body is not an ErrorBody: %s", respBody)
	}
	if eb.Reason != ReasonPeerUnreachable {
		t.Fatalf("reason %q, want %q", eb.Reason, ReasonPeerUnreachable)
	}
	if s.metrics.forwardErrors.Value() != 1 {
		t.Fatalf("cluster_forward_errors_total = %d, want 1", s.metrics.forwardErrors.Value())
	}
}

// Marking the owner down via health probes routes its keys to the
// survivor without errors: availability wins over affinity.
func TestClusterDownedPeerServedBySurvivor(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	s, err := NewClusterServer(Config{Cluster: &ClusterConfig{
		Self:           "http://127.0.0.1:1",
		Peers:          []string{deadURL},
		HealthInterval: time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// Two consecutive failed probes mark the peer down.
	s.cluster.health.CheckNow(context.Background())
	s.cluster.health.CheckNow(context.Background())
	if s.cluster.health.Alive(deadURL) {
		t.Fatal("dead peer still alive after two failed probes")
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	body := bodyOwnedBy(t, s.cluster.ring, deadURL)
	resp, respBody := postJSON(t, ts.URL+"/v1/analyze", body)
	if resp.StatusCode != 200 {
		t.Fatalf("request owned by downed peer: status %d, want local 200: %s", resp.StatusCode, respBody)
	}
	if resp.Header.Get(cluster.ServedByHeader) != "" {
		t.Fatal("request must be served locally when the owner is down")
	}
}

// A forwarded request carries the Forwarded header, so the receiving
// node serves it locally even when the ring says a third node owns it —
// relaying is bounded at one hop.
func TestClusterForwardedRequestServesLocally(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	body := analyzeBody(7)
	req, err := http.NewRequest(http.MethodPost, tc.urls[0]+"/v1/analyze", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(cluster.ServedByHeader) != "" {
		t.Fatal("a forwarded request was forwarded again")
	}
	if tc.servers[0].metrics.kernelMisses.Value() != 1 {
		t.Fatal("forwarded request must compute locally")
	}
}

// DrainToPeers pushes the drained node's cache entries to their ring
// owners, which accept them through /v1/cluster/fill.
func TestClusterDrainMigratesCache(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	// Warm node 0 with several distinct results computed locally (the
	// Forwarded header keeps them local regardless of ownership).
	for seed := 1; seed <= 16; seed++ {
		req, _ := http.NewRequest(http.MethodPost, tc.urls[0]+"/v1/analyze", strings.NewReader(analyzeBody(seed)))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(cluster.ForwardedHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	migrated := tc.servers[0].DrainToPeers(context.Background())
	if migrated == 0 {
		t.Fatal("drain migrated nothing; expected some keys owned by the peer")
	}
	if got := tc.servers[1].metrics.cacheFill.Value(); got != int64(migrated) {
		t.Fatalf("peer accepted %d fills, drain reported %d", got, migrated)
	}
}

// /v1/cluster/info reports membership and hedge state.
func TestClusterInfo(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	var info struct {
		Self         string   `json:"self"`
		Nodes        []string `json:"nodes"`
		Replicas     int      `json:"replicas"`
		HedgeEnabled bool     `json:"hedge_enabled"`
	}
	getJSON(t, tc.urls[0]+"/v1/cluster/info", &info)
	if info.Self != tc.urls[0] || len(info.Nodes) != 3 || info.Replicas != cluster.DefaultReplicas {
		t.Fatalf("info %+v", info)
	}
	if !info.HedgeEnabled {
		t.Fatal("hedging configured but reported disabled")
	}
}
