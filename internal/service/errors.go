package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// ErrorBody is the JSON body of every non-200 response: a human-readable
// message plus a machine-readable reason token drawn from the Reason*
// constants, so clients can branch on failure class without parsing
// prose. The service never answers an error with any other shape.
type ErrorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// Reason tokens. Stable API: clients switch on these strings.
const (
	ReasonBadRequest       = "bad_request"        // 400: malformed or invalid request
	ReasonUnprocessable    = "unprocessable"      // 422: well-formed but inapplicable
	ReasonArrayTooLarge    = "array_too_large"    // 413: kernel over the size limits
	ReasonMethodNotAllowed = "method_not_allowed" // 405
	ReasonDeadlineExceeded = "deadline_exceeded"  // 504: compute outlived its deadline
	ReasonCanceled         = "canceled"           // 499: client went away
	ReasonInternal         = "internal"           // 500: everything else
	ReasonPeerUnreachable  = "peer_unreachable"   // 502: no forward target answered
	ReasonJobExists        = "job_exists"         // 409: duplicate job ID
	ReasonJobNotFound      = "job_not_found"      // 404: unknown job ID
	ReasonTooManyJobs      = "too_many_jobs"      // 429: job manager at capacity
)

// reasonOf maps an error onto its reason token: a typed httpError's own
// reason when it carries one, otherwise a default derived from the
// status the error will be served with.
func reasonOf(err error) string {
	var he *httpError
	if errors.As(err, &he) && he.reason != "" {
		return he.reason
	}
	switch statusOf(err) {
	case http.StatusBadRequest:
		return ReasonBadRequest
	case http.StatusUnprocessableEntity:
		return ReasonUnprocessable
	case http.StatusRequestEntityTooLarge:
		return ReasonArrayTooLarge
	case http.StatusMethodNotAllowed:
		return ReasonMethodNotAllowed
	case http.StatusGatewayTimeout:
		return ReasonDeadlineExceeded
	case 499:
		return ReasonCanceled
	case http.StatusBadGateway:
		return ReasonPeerUnreachable
	case http.StatusNotFound:
		return ReasonJobNotFound
	case http.StatusConflict:
		return ReasonJobExists
	case http.StatusTooManyRequests:
		return ReasonTooManyJobs
	default:
		return ReasonInternal
	}
}

// errorResponse renders an ErrorBody as a response value for the shared
// finish path.
func errorResponse(status int, msg, reason string) response {
	b, _ := json.Marshal(ErrorBody{Error: msg, Reason: reason})
	return response{status: status, contentType: "application/json", body: append(b, '\n')}
}

// writeError answers a request with an ErrorBody directly, for handlers
// that sit outside the serveKeyed/finish flow (method guards, the job
// and cluster endpoints).
func writeError(w http.ResponseWriter, status int, msg, reason string) {
	res := errorResponse(status, msg, reason)
	w.Header().Set("Content-Type", res.contentType)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// statusOf maps compute errors to HTTP statuses: typed httpErrors carry
// their own, deadline expiry is 504, client cancellation 499 (nginx's
// convention), anything else 500.
func statusOf(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return 499
	}
	return http.StatusInternalServerError
}
