// Request and response schemas for the four v1 endpoints, and the
// computations behind them. Every compute is a pure function of its
// decoded request (all randomness is seeded from request fields), which
// is what makes content-addressed caching and request coalescing sound.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/clocksim"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/skew"
	"repro/internal/stats"
	"repro/internal/viz"
)

// httpError carries a status code chosen by the compute layer, and
// optionally a machine-readable reason token exposed alongside the
// human-readable message in the error body.
type httpError struct {
	status int
	msg    string
	reason string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: 400, msg: fmt.Sprintf(format, args...), reason: ReasonBadRequest}
}

func unprocessable(err error) error {
	return &httpError{status: 422, msg: err.Error(), reason: ReasonUnprocessable}
}

// tooLarge maps a skew.SizeError onto the wire: 413 with the
// machine-readable reason "array_too_large", so clients can
// distinguish "shrink your array or raise the server's limits" from
// an ordinary malformed request.
func tooLarge(err error) error {
	return &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error(), reason: ReasonArrayTooLarge}
}

// TopologySpec names a standard topology to construct server-side, as an
// alternative to posting a full graph.
type TopologySpec struct {
	Kind string `json:"kind"`
	N    int    `json:"n,omitempty"`
	Rows int    `json:"rows,omitempty"`
	Cols int    `json:"cols,omitempty"`
}

// GraphInput is the polymorphic graph field of every request: either a
// topology spec (built server-side via comm.Build) or a full inline
// graph in the comm interchange format (validated on decode).
type GraphInput struct {
	Topology *TopologySpec `json:"topology,omitempty"`
	Graph    *comm.Graph   `json:"graph,omitempty"`
}

func (in GraphInput) build() (*comm.Graph, error) {
	switch {
	case in.Topology != nil && in.Graph != nil:
		return nil, badRequest("give exactly one of topology and graph, not both")
	case in.Topology != nil:
		g, err := comm.Build(in.Topology.Kind, in.Topology.N, in.Topology.Rows, in.Topology.Cols)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return g, nil
	case in.Graph != nil:
		return in.Graph, nil
	}
	return nil, badRequest("request needs a topology or a graph")
}

// treeBuilders maps builder names accepted by the API to constructions.
var treeBuilders = map[string]func(*comm.Graph) (*clocktree.Tree, error){
	"htree":      clocktree.HTree,
	"spine":      clocktree.Spine,
	"ladder":     clocktree.Ladder,
	"serpentine": clocktree.Serpentine,
	"comm":       clocktree.AlongCommTree,
}

func treeBuilderNames() []string {
	names := make([]string, 0, len(treeBuilders))
	for n := range treeBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// buildTree constructs, optionally equalizes, and optionally buffers one
// named clock tree over g.
func buildTree(name string, g *comm.Graph, equalize bool, spacing float64) (*clocktree.Tree, error) {
	build, ok := treeBuilders[name]
	if !ok {
		return nil, badRequest("unknown tree builder %q (want one of %s)", name, strings.Join(treeBuilderNames(), ", "))
	}
	t, err := build(g)
	if err != nil {
		return nil, unprocessable(err)
	}
	if equalize {
		t.Equalize()
	}
	if spacing > 0 {
		t, err = clocktree.Buffered(t, spacing)
		if err != nil {
			return nil, unprocessable(err)
		}
	}
	return t, nil
}

// kernelKey is the canonical identity of one cached skew kernel: the
// full graph (in the comm interchange encoding) plus the tree recipe.
// Two requests that differ only in model, trial count, seed, or timeout
// map to the same key and share one precomputation.
type kernelKey struct {
	Graph    *comm.Graph `json:"graph"`
	Tree     string      `json:"tree"`
	Equalize bool        `json:"equalize,omitempty"`
	Spacing  float64     `json:"spacing,omitempty"`
}

// kernelFor returns the cached skew kernel for (g, tree recipe),
// building tree and kernel on a miss. The cache is content-addressed
// with the same SHA-256 scheme as the result cache, so inline graphs
// and equivalent server-built topologies cannot collide. Errors are not
// cached: an invalid builder name or inapplicable topology recomputes
// (and re-reports) on every request, which keeps error semantics
// identical to the uncached path.
func (s *Server) kernelFor(g *comm.Graph, tree string, equalize bool, spacing float64) (*skew.Kernel, error) {
	canonical, err := canonicalize(&kernelKey{Graph: g, Tree: tree, Equalize: equalize, Spacing: spacing})
	if err != nil {
		return nil, err
	}
	key := cacheKey("kernel", canonical)
	if k, ok := s.kernels.Get(key); ok {
		s.metrics.kernelHits.Add(1)
		return k, nil
	}
	s.metrics.kernelMisses.Add(1)
	t, err := buildTree(tree, g, equalize, spacing)
	if err != nil {
		return nil, err
	}
	k, err := skew.NewKernelWithLimits(g, t, s.cfg.KernelLimits)
	if err != nil {
		var se *skew.SizeError
		if errors.As(err, &se) {
			return nil, tooLarge(err)
		}
		return nil, unprocessable(err)
	}
	s.kernels.Put(key, k)
	return k, nil
}

// clockKernelFor returns the cached clocksim kernel for (g, tree
// recipe): the flat propagation schedule reused across regimes, seeds,
// trial counts, and the configs of one batched simulate. It rides on
// kernelFor so the built tree is shared with analyze and the skew size
// limits (413 on oversize arrays) apply identically.
func (s *Server) clockKernelFor(g *comm.Graph, tree string, equalize bool, spacing float64) (*clocksim.Kernel, error) {
	canonical, err := canonicalize(&kernelKey{Graph: g, Tree: tree, Equalize: equalize, Spacing: spacing})
	if err != nil {
		return nil, err
	}
	key := cacheKey("simkernel", canonical)
	if k, ok := s.simKernels.Get(key); ok {
		s.metrics.simKernelHits.Add(1)
		return k, nil
	}
	s.metrics.simKernelMisses.Add(1)
	sk, err := s.kernelFor(g, tree, equalize, spacing)
	if err != nil {
		return nil, err
	}
	k, err := clocksim.NewKernel(g, sk.Tree())
	if err != nil {
		return nil, unprocessable(err)
	}
	s.simKernels.Put(key, k)
	return k, nil
}

// hybridSystemKey is the canonical identity of one cached hybrid
// system: the graph plus the element size, the only config field the
// partition depends on. All other hybrid parameters are layered on per
// request with WithConfig, sharing the cached recurrence kernel.
type hybridSystemKey struct {
	Graph       *comm.Graph `json:"graph"`
	ElementSize float64     `json:"element_size"`
}

// hybridSystemFor returns a hybrid system for (g, cfg), reusing the
// cached partition + kernel when one exists for (g, cfg.ElementSize).
func (s *Server) hybridSystemFor(g *comm.Graph, cfg hybrid.Config) (*hybrid.System, error) {
	canonical, err := canonicalize(&hybridSystemKey{Graph: g, ElementSize: cfg.ElementSize})
	if err != nil {
		return nil, err
	}
	key := cacheKey("hybridsys", canonical)
	if base, ok := s.hybridSystems.Get(key); ok {
		s.metrics.simKernelHits.Add(1)
		sys, err := base.WithConfig(cfg)
		if err != nil {
			return nil, unprocessable(err)
		}
		return sys, nil
	}
	s.metrics.simKernelMisses.Add(1)
	sys, err := hybrid.New(g, cfg)
	if err != nil {
		return nil, unprocessable(err)
	}
	s.hybridSystems.Put(key, sys)
	return sys, nil
}

// ---------------------------------------------------------------- plan

// PlanRequest mirrors cmd/planner's flags. Zero-valued physical
// parameters take the planner CLI's defaults, applied before
// canonicalization so spelled-out defaults and omitted fields share one
// cache entry.
type PlanRequest struct {
	GraphInput
	Model             string  `json:"model"`
	M                 float64 `json:"m"`
	Eps               float64 `json:"eps"`
	Delta             float64 `json:"delta"`
	BufferSpacing     float64 `json:"buffer_spacing"`
	Alpha             float64 `json:"alpha,omitempty"`
	Handshake         float64 `json:"handshake,omitempty"`
	LocalDistribution float64 `json:"local_distribution,omitempty"`
	ElementSize       float64 `json:"element_size,omitempty"`
	TimeoutMS         int64   `json:"timeout_ms,omitempty"`
}

func (req *PlanRequest) applyDefaults() {
	if req.Model == "" {
		req.Model = string(core.SummationModel)
	}
	if req.M == 0 {
		req.M = 1
	}
	if req.Eps == 0 {
		req.Eps = 0.1
	}
	if req.Delta == 0 {
		req.Delta = 2
	}
	if req.BufferSpacing == 0 {
		req.BufferSpacing = 1
	}
	if req.Alpha == 0 && core.ModelKind(req.Model) == core.NoPipelining {
		req.Alpha = 1
	}
}

// Assumptions converts the request's physical parameters to the
// planner's input form.
func (req *PlanRequest) Assumptions() core.Assumptions {
	return core.Assumptions{
		Model:             core.ModelKind(req.Model),
		M:                 req.M,
		Eps:               req.Eps,
		Delta:             req.Delta,
		BufferSpacing:     req.BufferSpacing,
		Alpha:             req.Alpha,
		Handshake:         req.Handshake,
		LocalDistribution: req.LocalDistribution,
		ElementSize:       req.ElementSize,
	}
}

func (s *Server) computePlan(ctx context.Context, req *PlanRequest) (response, error) {
	g, err := req.build()
	if err != nil {
		return response{}, err
	}
	plan, err := core.NewPlan(g, req.Assumptions())
	if err != nil {
		return response{}, unprocessable(err)
	}
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, plan); err != nil {
		return response{}, err
	}
	return jsonResponse(buf.Bytes()), nil
}

// ------------------------------------------------------------- analyze

// ModelSpec selects a skew model for analysis.
type ModelSpec struct {
	Kind string  `json:"kind"`
	M    float64 `json:"m,omitempty"`
	Eps  float64 `json:"eps,omitempty"`
}

func (m *ModelSpec) applyDefaults() {
	if m.Kind == "" {
		m.Kind = "linear"
	}
	if m.M == 0 {
		m.M = 1
	}
	if m.Eps == 0 {
		m.Eps = 0.1
	}
}

func (m ModelSpec) build() (skew.Model, error) {
	switch m.Kind {
	case "difference":
		return skew.Difference{F: func(d float64) float64 { return m.M * d }}, nil
	case "summation":
		return skew.Summation{G: func(s float64) float64 { return m.Eps * s }, Beta: m.Eps}, nil
	case "linear":
		return skew.Linear{M: m.M, Eps: m.Eps}, nil
	}
	return nil, badRequest("unknown skew model %q (want difference, summation, or linear)", m.Kind)
}

// AnalyzeRequest evaluates one skew model over a set of candidate clock
// trees for a graph, optionally with Monte-Carlo simulation and the
// Section V-B certified mesh lower bound.
type AnalyzeRequest struct {
	GraphInput
	Trees               []string  `json:"trees"`
	Equalize            bool      `json:"equalize,omitempty"`
	BufferSpacing       float64   `json:"buffer_spacing,omitempty"`
	Model               ModelSpec `json:"model"`
	MonteCarloTrials    int       `json:"montecarlo_trials,omitempty"`
	Seed                int64     `json:"seed,omitempty"`
	CertifiedLowerBound bool      `json:"certified_lower_bound,omitempty"`
	TimeoutMS           int64     `json:"timeout_ms,omitempty"`
}

func (req *AnalyzeRequest) applyDefaults() {
	if len(req.Trees) == 0 {
		req.Trees = []string{"htree"}
	}
	req.Model.applyDefaults()
	if req.Seed == 0 {
		req.Seed = 1
	}
}

// routeIdentity is the cheap ring-routing identity of a kernel: the
// graph exactly as the request described it (topology spec or inline
// graph) plus the tree recipe. Hashing the request's own description
// instead of the built graph makes key derivation O(request size),
// not O(cells) — microseconds against tens of milliseconds per
// forwarded request on large meshes. Requests naming the same spec
// and recipe still route together, which is all the ring needs; two
// different specs for the same graph merely route apart and cost one
// duplicate kernel, never a wrong answer.
type routeIdentity struct {
	Input    GraphInput `json:"input"`
	Kind     string     `json:"kind"` // kernel family: "kernel" or "hybridsys"
	Tree     string     `json:"tree,omitempty"`
	Equalize bool       `json:"equalize,omitempty"`
	Spacing  float64    `json:"spacing,omitempty"`
	Size     float64    `json:"size,omitempty"` // hybrid element size
}

func (id *routeIdentity) key() (string, bool) {
	canonical, err := canonicalize(id)
	if err != nil {
		return "", false
	}
	return cacheKey("route", canonical), true
}

// affinityKey routes an analyze request on the identity of its first
// tree's kernel, so every request sharing that kernel — any model,
// seed, or trial count — lands on the node that holds it.
func (req *AnalyzeRequest) affinityKey() (string, bool) {
	if len(req.Trees) == 0 {
		return "", false
	}
	id := routeIdentity{Input: req.GraphInput, Kind: "kernel", Tree: req.Trees[0], Equalize: req.Equalize, Spacing: req.BufferSpacing}
	return id.key()
}

// TreeAnalysis is one candidate tree's analysis. A builder that does not
// apply to the posted graph (e.g. a ladder on a mesh) reports its error
// inline rather than failing the whole request — collect-all, like the
// experiment runner.
type TreeAnalysis struct {
	Tree                string  `json:"tree"`
	Error               string  `json:"error,omitempty"`
	Nodes               int     `json:"nodes,omitempty"`
	Buffers             int     `json:"buffers,omitempty"`
	TotalWireLength     float64 `json:"total_wire_length,omitempty"`
	MaxSkew             float64 `json:"max_skew,omitempty"`
	WorstPair           [2]int  `json:"worst_pair,omitempty"`
	MaxD                float64 `json:"max_d,omitempty"`
	MaxS                float64 `json:"max_s,omitempty"`
	Pairs               int     `json:"pairs,omitempty"`
	GuaranteedMinSkew   float64 `json:"guaranteed_min_skew,omitempty"`
	MonteCarloMaxSkew   float64 `json:"montecarlo_max_skew,omitempty"`
	CertifiedLowerBound float64 `json:"certified_lower_bound,omitempty"`

	// Streamed marks a result served by the bounded-memory streamed path
	// instead of a materialized kernel — the machine-readable signal that
	// the array exceeded the server's kernel size limits and the fallback
	// engaged. MaxSkew, WorstPair, MaxD/MaxS, and GuaranteedMinSkew are
	// still exact (bit-identical to what a kernel would report); the skew
	// quantiles come from a mergeable sketch with the stated relative
	// error, and Monte-Carlo trials become a sampled-max estimate with a
	// confidence interval rather than MonteCarloMaxSkew.
	Streamed         bool                     `json:"streamed,omitempty"`
	StreamShards     int                      `json:"stream_shards,omitempty"`
	StreamShardSize  int64                    `json:"stream_shard_size,omitempty"`
	SkewP50          float64                  `json:"skew_p50,omitempty"`
	SkewP90          float64                  `json:"skew_p90,omitempty"`
	SkewP99          float64                  `json:"skew_p99,omitempty"`
	QuantileRelError float64                  `json:"quantile_rel_error,omitempty"`
	Sampled          *skew.SampledMaxEstimate `json:"sampled,omitempty"`
}

// AnalyzeResponse is the analyze endpoint's body.
type AnalyzeResponse struct {
	Graph   string         `json:"graph"`
	Cells   int            `json:"cells"`
	Model   string         `json:"model"`
	Results []TreeAnalysis `json:"results"`
}

func (s *Server) computeAnalyze(ctx context.Context, req *AnalyzeRequest) (response, error) {
	g, err := req.build()
	if err != nil {
		return response{}, err
	}
	model, err := req.Model.build()
	if err != nil {
		return response{}, err
	}
	if req.MonteCarloTrials < 0 || req.MonteCarloTrials > 1<<20 {
		return response{}, badRequest("montecarlo_trials must be in [0, %d], got %d", 1<<20, req.MonteCarloTrials)
	}

	// Fan the candidate trees out over the worker pool; each tree's
	// Monte Carlo trials fan out again inside MonteCarloParallel. The
	// kernel cache means a repeat of a (graph, tree) recipe — even under
	// a different model, trial count, or seed — skips the tree build and
	// pair-geometry precomputation entirely.
	results := runner.Map(ctx, s.cfg.Workers, len(req.Trees), func(ctx context.Context, i int) (TreeAnalysis, error) {
		out := TreeAnalysis{Tree: req.Trees[i]}
		k, err := s.kernelFor(g, req.Trees[i], req.Equalize, req.BufferSpacing)
		if err != nil {
			// An oversize array switches to the streamed path, which
			// answers exactly in bounded memory; with the fallback
			// disabled it fails the whole request with its typed 413 —
			// inlining it like a mere builder mismatch would bury the
			// status in a 200 body.
			var he *httpError
			if errors.As(err, &he) && he.status == http.StatusRequestEntityTooLarge {
				if s.cfg.NoStreamedFallback {
					return out, err
				}
				return s.streamedTreeAnalysis(ctx, g, req.Trees[i], req, model, nil)
			}
			out.Error = err.Error()
			return out, nil
		}
		tree := k.Tree()
		analysis := k.Analyze(model)
		out.Nodes = tree.NumNodes()
		out.Buffers = tree.BufferCount()
		out.TotalWireLength = tree.TotalWireLength()
		out.MaxSkew = analysis.MaxSkew
		out.WorstPair = [2]int{int(analysis.WorstPair.A), int(analysis.WorstPair.B)}
		out.MaxD, out.MaxS = analysis.MaxD, analysis.MaxS
		out.Pairs = analysis.Pairs
		out.GuaranteedMinSkew = k.GuaranteedMinSkew(model)
		if req.MonteCarloTrials > 0 {
			mc, err := k.MonteCarloParallel(ctx, s.cfg.Workers,
				skew.Linear{M: req.Model.M, Eps: req.Model.Eps},
				req.MonteCarloTrials, stats.NewRNG(req.Seed))
			if err != nil {
				return out, err
			}
			out.MonteCarloMaxSkew = mc
		}
		if req.CertifiedLowerBound && g.Kind == comm.KindMesh {
			cert, err := skew.MeshCertifiedLowerBound(g, tree, req.Model.Eps)
			if err != nil {
				out.Error = err.Error()
				return out, nil
			}
			out.CertifiedLowerBound = cert.Bound
		}
		return out, nil
	})
	if err := runner.Join(results); err != nil {
		return response{}, firstTypedError(results, err)
	}
	resp := AnalyzeResponse{Graph: g.Name, Cells: g.NumCells(), Model: model.Name()}
	for _, r := range results {
		resp.Results = append(resp.Results, r.Value)
	}
	return marshalResponse(resp)
}

// ------------------------------------------------------------ simulate

// ClockParamsSpec are clocksim.Params in request form.
type ClockParamsSpec struct {
	M             float64 `json:"m,omitempty"`
	Eps           float64 `json:"eps,omitempty"`
	BufferDelay   float64 `json:"buffer_delay,omitempty"`
	MinSeparation float64 `json:"min_separation,omitempty"`
	RiseFallBias  float64 `json:"rise_fall_bias,omitempty"`
}

// HybridSpec parameterizes a hybrid-synchronization simulation.
type HybridSpec struct {
	ElementSize       float64 `json:"element_size,omitempty"`
	Handshake         float64 `json:"handshake,omitempty"`
	LocalDistribution float64 `json:"local_distribution,omitempty"`
	CellDelay         float64 `json:"cell_delay,omitempty"`
	HoldDelay         float64 `json:"hold_delay,omitempty"`
	Waves             int     `json:"waves,omitempty"`
}

// SimulateConfig is one simulation's parameters, independent of the
// graph: mode, tree recipe, regime, trial count, seed, fault injection,
// and hybrid knobs. A batched simulate carries several of these over
// one topology so the engine precomputation is built once per recipe
// and amortized across the sweep.
type SimulateConfig struct {
	Mode          string          `json:"mode,omitempty"` // "clock" (default) or "hybrid"
	Tree          string          `json:"tree,omitempty"`
	Equalize      bool            `json:"equalize,omitempty"`
	BufferSpacing float64         `json:"buffer_spacing,omitempty"`
	Regime        string          `json:"regime,omitempty"` // nominal | random | jittered | adversarial
	Trials        int             `json:"trials,omitempty"`
	Seed          int64           `json:"seed,omitempty"`
	Pair          *[2]int         `json:"pair,omitempty"` // adversarial target pair
	Params        ClockParamsSpec `json:"params,omitempty"`
	Faults        *faults.Config  `json:"faults,omitempty"`
	Hybrid        *HybridSpec     `json:"hybrid,omitempty"`

	// Topology and Graph are accepted on batch items only so that
	// posting one can be rejected crisply: every config of a batch runs
	// over the request's single topology.
	Topology *TopologySpec `json:"topology,omitempty"`
	Graph    *comm.Graph   `json:"graph,omitempty"`
}

func (c *SimulateConfig) applyDefaults() {
	if c.Mode == "" {
		c.Mode = "clock"
	}
	if c.Tree == "" {
		c.Tree = "htree"
	}
	if c.Regime == "" {
		c.Regime = "nominal"
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Params.M == 0 {
		c.Params.M = 1
	}
	if c.Mode == "hybrid" {
		if c.Hybrid == nil {
			c.Hybrid = &HybridSpec{}
		}
		h := c.Hybrid
		if h.ElementSize == 0 {
			h.ElementSize = 4
		}
		if h.CellDelay == 0 {
			h.CellDelay = 2
		}
		if h.HoldDelay == 0 {
			h.HoldDelay = h.CellDelay / 4
		}
		if h.Handshake == 0 {
			h.Handshake = h.CellDelay / 2
		}
		if h.Waves == 0 {
			h.Waves = 32
		}
	}
}

// SimulateRequest runs clock-propagation or hybrid-handshake simulation,
// including the fault-injected variants. Two forms share the endpoint:
// the single form, whose simulation fields sit directly on the request,
// and the batch form, which posts configs — N SimulateConfigs evaluated
// over the request's one topology (the single-form simulation fields
// are ignored then). The batch form exists for parameter sweeps: one
// kernel build per (tree recipe) serves every config that shares it.
type SimulateRequest struct {
	GraphInput
	Mode          string           `json:"mode"` // "clock" (default) or "hybrid"
	Tree          string           `json:"tree,omitempty"`
	Equalize      bool             `json:"equalize,omitempty"`
	BufferSpacing float64          `json:"buffer_spacing,omitempty"`
	Regime        string           `json:"regime,omitempty"` // nominal | random | jittered | adversarial
	Trials        int              `json:"trials,omitempty"`
	Seed          int64            `json:"seed,omitempty"`
	Pair          *[2]int          `json:"pair,omitempty"` // adversarial target pair
	Params        ClockParamsSpec  `json:"params"`
	Faults        *faults.Config   `json:"faults,omitempty"`
	Hybrid        *HybridSpec      `json:"hybrid,omitempty"`
	Configs       []SimulateConfig `json:"configs,omitempty"` // batch form
	TimeoutMS     int64            `json:"timeout_ms,omitempty"`
}

// config lifts the single-form simulation fields into a SimulateConfig.
func (req *SimulateRequest) config() SimulateConfig {
	return SimulateConfig{
		Mode: req.Mode, Tree: req.Tree,
		Equalize: req.Equalize, BufferSpacing: req.BufferSpacing,
		Regime: req.Regime, Trials: req.Trials, Seed: req.Seed,
		Pair: req.Pair, Params: req.Params, Faults: req.Faults, Hybrid: req.Hybrid,
	}
}

func (req *SimulateRequest) applyDefaults() {
	if len(req.Configs) > 0 {
		for i := range req.Configs {
			req.Configs[i].applyDefaults()
		}
		return
	}
	c := req.config()
	c.applyDefaults()
	req.Mode, req.Tree, req.Regime = c.Mode, c.Tree, c.Regime
	req.Trials, req.Seed, req.Params, req.Hybrid = c.Trials, c.Seed, c.Params, c.Hybrid
}

// affinityKey routes a simulate request on its engine precomputation:
// the clocksim kernel's content address in clock mode, the hybrid
// system's in hybrid mode. A batch routes on its first config's recipe —
// sweeps share one recipe, so the whole batch lands where the kernel is.
func (req *SimulateRequest) affinityKey() (string, bool) {
	c := req.config()
	if len(req.Configs) > 0 {
		c = req.Configs[0]
		if c.Topology != nil || c.Graph != nil {
			return "", false
		}
	}
	switch c.Mode {
	case "hybrid":
		size := 4.0
		if c.Hybrid != nil && c.Hybrid.ElementSize != 0 {
			size = c.Hybrid.ElementSize
		}
		id := routeIdentity{Input: req.GraphInput, Kind: "hybridsys", Size: size}
		return id.key()
	default:
		id := routeIdentity{Input: req.GraphInput, Kind: "kernel", Tree: c.Tree, Equalize: c.Equalize, Spacing: c.BufferSpacing}
		return id.key()
	}
}

// SummaryJSON is a stats.Summary in response form.
type SummaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func summaryJSON(s stats.Summary) *SummaryJSON {
	return &SummaryJSON{N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, P50: s.P50, P90: s.P90, P99: s.P99, Max: s.Max}
}

// FaultsJSON reports one representative trial's injected-fault tallies
// (the injector is keyed, so every trial of a request draws the same
// pattern).
type FaultsJSON struct {
	Dropped    int64 `json:"dropped"`
	Delayed    int64 `json:"delayed"`
	Jittered   int64 `json:"jittered"`
	Metastable int64 `json:"metastable"`
}

// HybridSimJSON is the hybrid-mode simulation result.
type HybridSimJSON struct {
	Elements        int     `json:"elements"`
	MaxElementCells int     `json:"max_element_cells"`
	Waves           int     `json:"waves"`
	WaveCost        float64 `json:"wave_cost"`
	CycleTime       float64 `json:"cycle_time"`
	LastWaveSpread  float64 `json:"last_wave_spread"`
	MaxStall        float64 `json:"max_stall,omitempty"`
}

// SimulateResponse is the simulate endpoint's body.
type SimulateResponse struct {
	Graph              string         `json:"graph"`
	Cells              int            `json:"cells"`
	Mode               string         `json:"mode"`
	Tree               string         `json:"tree,omitempty"`
	Regime             string         `json:"regime,omitempty"`
	Trials             int            `json:"trials,omitempty"`
	CommSkew           *SummaryJSON   `json:"comm_skew,omitempty"`
	MaxEventDrift      float64        `json:"max_event_drift,omitempty"`
	MinPipelinedPeriod float64        `json:"min_pipelined_period,omitempty"`
	Hybrid             *HybridSimJSON `json:"hybrid,omitempty"`
	Faults             *FaultsJSON    `json:"faults,omitempty"`
}

// SimulateBatchItem is one config's slot in a batch response: its index
// in the posted configs, and either the simulation result or an inline
// error (collect-all, like analyze's per-tree errors — one bad config
// does not fail the sweep).
type SimulateBatchItem struct {
	Index  int               `json:"index"`
	Error  string            `json:"error,omitempty"`
	Result *SimulateResponse `json:"result,omitempty"`
}

// SimulateBatchResponse is the batch form's body.
type SimulateBatchResponse struct {
	Graph   string              `json:"graph"`
	Cells   int                 `json:"cells"`
	Configs int                 `json:"configs"`
	Results []SimulateBatchItem `json:"results"`
}

func (s *Server) computeSimulate(ctx context.Context, req *SimulateRequest) (response, error) {
	g, err := req.build()
	if err != nil {
		return response{}, err
	}
	if len(req.Configs) > 0 {
		return s.computeSimulateBatch(ctx, g, req)
	}
	cfg := req.config()
	resp, err := s.simulateOne(ctx, g, &cfg)
	if err != nil {
		return response{}, err
	}
	return marshalResponse(resp)
}

// computeSimulateBatch fans the configs out over the worker pool. The
// engine caches make the fan-out cheap: every config sharing a (tree
// recipe) or element size reuses one precomputed kernel, so a fresh
// topology costs one build for the whole sweep.
func (s *Server) computeSimulateBatch(ctx context.Context, g *comm.Graph, req *SimulateRequest) (response, error) {
	if len(req.Configs) > s.cfg.MaxBatchConfigs {
		return response{}, badRequest("batch carries %d configs, limit %d", len(req.Configs), s.cfg.MaxBatchConfigs)
	}
	ctx, span := obs.Start(ctx, "simulate.batch",
		obs.Int("configs", int64(len(req.Configs))), obs.Int("cells", int64(g.NumCells())))
	defer span.End()
	// Warm the engine caches sequentially so every distinct recipe in
	// the batch is built exactly once, no matter how the fan-out races:
	// concurrent items would otherwise each miss and build the same
	// kernel. Errors are ignored here — they are not cached, so the
	// owning item re-derives and reports them inline.
	type clockRecipe struct {
		tree    string
		eq      bool
		spacing float64
	}
	seenClock := make(map[clockRecipe]bool)
	seenHybrid := make(map[float64]bool)
	for i := range req.Configs {
		c := &req.Configs[i]
		if c.Topology != nil || c.Graph != nil {
			continue
		}
		switch c.Mode {
		case "clock":
			r := clockRecipe{c.Tree, c.Equalize, c.BufferSpacing}
			if !seenClock[r] {
				seenClock[r] = true
				_, _ = s.clockKernelFor(g, c.Tree, c.Equalize, c.BufferSpacing)
			}
		case "hybrid":
			if c.Hybrid != nil && !seenHybrid[c.Hybrid.ElementSize] {
				seenHybrid[c.Hybrid.ElementSize] = true
				_, _ = s.hybridSystemFor(g, hybrid.Config{
					ElementSize:       c.Hybrid.ElementSize,
					Handshake:         c.Hybrid.Handshake,
					LocalDistribution: c.Hybrid.LocalDistribution,
					CellDelay:         c.Hybrid.CellDelay,
					HoldDelay:         c.Hybrid.HoldDelay,
				})
			}
		}
	}
	results := runner.Map(ctx, s.cfg.Workers, len(req.Configs), func(ctx context.Context, i int) (SimulateBatchItem, error) {
		item := SimulateBatchItem{Index: i}
		r, err := s.simulateOne(ctx, g, &req.Configs[i])
		if err != nil {
			// Oversize arrays (413) and expired deadlines fail the whole
			// request with their typed status; anything else is this one
			// config's problem and reports inline.
			var he *httpError
			if errors.As(err, &he) && he.status == http.StatusRequestEntityTooLarge {
				return item, err
			}
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return item, err
			}
			item.Error = err.Error()
			s.logBatchError(ctx, i, err)
			return item, nil
		}
		item.Result = r
		return item, nil
	})
	if err := runner.Join(results); err != nil {
		return response{}, firstTypedError(results, err)
	}
	resp := SimulateBatchResponse{Graph: g.Name, Cells: g.NumCells(), Configs: len(req.Configs)}
	for _, r := range results {
		resp.Results = append(resp.Results, r.Value)
	}
	return marshalResponse(resp)
}

// logBatchError emits one structured log line per batch config that
// failed inline, carrying the config's index so operators can locate the
// offending config without diffing the 200 response body it is buried in.
func (s *Server) logBatchError(ctx context.Context, index int, err error) {
	if s.logger == nil {
		return
	}
	line, _ := json.Marshal(map[string]any{
		"time":         time.Now().UTC().Format(time.RFC3339Nano),
		"event":        "batch_config_error",
		"request_id":   requestIDFrom(ctx),
		"endpoint":     "simulate",
		"config_index": index,
		"error":        err.Error(),
	})
	s.logger.Println(string(line))
}

// simulateOne evaluates a single config against the shared graph. Both
// the single form and every batch item funnel through here.
func (s *Server) simulateOne(ctx context.Context, g *comm.Graph, cfg *SimulateConfig) (*SimulateResponse, error) {
	if cfg.Topology != nil || cfg.Graph != nil {
		return nil, badRequest("a batch config carries its own topology or graph; every config runs over the request's topology")
	}
	if cfg.Trials < 1 || cfg.Trials > 1<<16 {
		return nil, badRequest("trials must be in [1, %d], got %d", 1<<16, cfg.Trials)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	resp := &SimulateResponse{Graph: g.Name, Cells: g.NumCells(), Mode: cfg.Mode}
	switch cfg.Mode {
	case "hybrid":
		if err := s.simulateHybrid(ctx, g, cfg, resp); err != nil {
			return nil, err
		}
	case "clock":
		if err := s.simulateClock(ctx, g, cfg, resp); err != nil {
			return nil, err
		}
	default:
		return nil, badRequest("unknown mode %q (want clock or hybrid)", cfg.Mode)
	}
	return resp, nil
}

func (s *Server) simulateClock(ctx context.Context, g *comm.Graph, cfg *SimulateConfig, resp *SimulateResponse) error {
	// One precomputed clocksim kernel serves every regime, seed, and
	// trial count over this (graph, tree) recipe — across requests via
	// the cache, and across the configs of one batch.
	k, err := s.clockKernelFor(g, cfg.Tree, cfg.Equalize, cfg.BufferSpacing)
	if err != nil {
		return err
	}
	tree := k.Tree()
	p := clocksim.Params{
		M: cfg.Params.M, Eps: cfg.Params.Eps,
		BufferDelay:   cfg.Params.BufferDelay,
		MinSeparation: cfg.Params.MinSeparation,
		RiseFallBias:  cfg.Params.RiseFallBias,
	}
	var pair [2]comm.CellID
	if cfg.Regime == "adversarial" {
		pairs := g.CommunicatingPairs()
		if len(pairs) == 0 {
			return unprocessable(fmt.Errorf("service: graph %q has no communicating pairs", g.Name))
		}
		pair = pairs[0]
		if cfg.Pair != nil {
			pair = [2]comm.CellID{comm.CellID(cfg.Pair[0]), comm.CellID(cfg.Pair[1])}
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	results := runner.Map(ctx, s.cfg.Workers, cfg.Trials, func(_ context.Context, i int) (float64, error) {
		switch cfg.Regime {
		case "nominal":
			v, err := k.NominalSkew(p)
			if err != nil {
				return 0, unprocessable(err)
			}
			return v, nil
		case "random":
			v, err := k.RandomSkew(p, rng.Fork(int64(i)))
			if err != nil {
				return 0, unprocessable(err)
			}
			return v, nil
		case "jittered":
			// One injector per trial: an Injector is single-goroutine,
			// and the keyed decisions make every trial's pattern
			// identical for a given seed anyway.
			inj, err := faults.New(faultsOrZero(cfg.Faults), cfg.Seed)
			if err != nil {
				return 0, badRequest("%v", err)
			}
			v, err2 := k.JitteredSkew(p, rng.Fork(int64(i)), inj)
			if err2 != nil {
				return 0, unprocessable(err2)
			}
			return v, nil
		case "adversarial":
			v, err := k.AdversarialSkew(p, pair[0], pair[1])
			if err != nil {
				return 0, unprocessable(err)
			}
			return v, nil
		default:
			return 0, badRequest("unknown regime %q (want nominal, random, jittered, or adversarial)", cfg.Regime)
		}
	})
	if err := runner.Join(results); err != nil {
		return firstTypedError(results, err)
	}
	summary := stats.Summarize(runner.Values(results))
	resp.Tree = tree.Name
	resp.Regime = cfg.Regime
	resp.Trials = cfg.Trials
	resp.CommSkew = summaryJSON(summary)
	resp.MaxEventDrift = k.MaxEventDrift(p)
	if p.MinSeparation > 0 {
		resp.MinPipelinedPeriod = k.MinPipelinedPeriod(p)
	}
	if cfg.Regime == "jittered" {
		inj, err := faults.New(faultsOrZero(cfg.Faults), cfg.Seed)
		if err == nil {
			// Re-draw one trial's pattern solely to report its tallies.
			for id := 0; id < tree.NumNodes(); id++ {
				inj.EdgeJitter(uint64(id))
			}
			c := inj.Counts()
			resp.Faults = &FaultsJSON{Jittered: c.Jittered}
		}
	}
	return nil
}

func (s *Server) simulateHybrid(ctx context.Context, g *comm.Graph, cfg *SimulateConfig, resp *SimulateResponse) error {
	h := cfg.Hybrid
	if h.Waves < 1 || h.Waves > 1<<12 {
		return badRequest("hybrid waves must be in [1, %d], got %d", 1<<12, h.Waves)
	}
	hcfg := hybrid.Config{
		ElementSize:       h.ElementSize,
		Handshake:         h.Handshake,
		LocalDistribution: h.LocalDistribution,
		CellDelay:         h.CellDelay,
		HoldDelay:         h.HoldDelay,
	}
	// The cached system carries the partition and recurrence kernel for
	// (graph, element size); WithConfig layers this request's timing
	// parameters on without rebuilding either.
	sys, err := s.hybridSystemFor(g, hcfg)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var inj *faults.Injector
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj, err = faults.New(*cfg.Faults, cfg.Seed)
		if err != nil {
			return badRequest("%v", err)
		}
	}
	times, err := sys.SimulateHandshakeFaulty(h.Waves, inj)
	if err != nil {
		return unprocessable(err)
	}
	last := times[len(times)-1]
	lo, hi := stats.Min(last), stats.Max(last)
	out := &HybridSimJSON{
		Elements:        sys.NumElements(),
		MaxElementCells: sys.MaxElementCells(),
		Waves:           h.Waves,
		WaveCost:        hcfg.WaveCost(),
		CycleTime:       sys.CycleTime(h.Waves),
		LastWaveSpread:  hi - lo,
	}
	if inj != nil {
		clean, err := sys.SimulateHandshakeFaulty(h.Waves, nil)
		if err != nil {
			return unprocessable(err)
		}
		var stall float64
		for k := range times {
			for v := range times[k] {
				if d := times[k][v] - clean[k][v]; d > stall {
					stall = d
				}
			}
		}
		out.MaxStall = stall
		c := inj.Counts()
		resp.Faults = &FaultsJSON{Dropped: c.Dropped, Delayed: c.Delayed, Jittered: c.Jittered, Metastable: c.Metastable}
	}
	resp.Hybrid = out
	return nil
}

// faultsOrZero dereferences an optional fault config.
func faultsOrZero(c *faults.Config) faults.Config {
	if c == nil {
		return faults.Config{}
	}
	return *c
}

// firstTypedError prefers a typed httpError from the task results over
// the aggregate, so clients see the real status code.
func firstTypedError[T any](results []runner.Result[T], agg error) error {
	for _, r := range results {
		var he *httpError
		if r.Err != nil && errors.As(r.Err, &he) {
			return he
		}
	}
	return agg
}

// -------------------------------------------------------------- layout

// LayoutRequest is the query-parameter form of GET /v1/layout.svg,
// normalized into a struct so layouts cache under the same
// content-addressing as the POST endpoints.
type LayoutRequest struct {
	Topology    TopologySpec `json:"topology"`
	Tree        string       `json:"tree,omitempty"` // "" or "none" = no clock overlay
	Equalize    bool         `json:"equalize,omitempty"`
	Spacing     float64      `json:"spacing,omitempty"`
	Hybrid      bool         `json:"hybrid,omitempty"`
	ElementSize float64      `json:"element_size,omitempty"`
	Caption     string       `json:"caption,omitempty"`
}

func (s *Server) computeLayout(ctx context.Context, req *LayoutRequest) (response, error) {
	g, err := comm.Build(req.Topology.Kind, req.Topology.N, req.Topology.Rows, req.Topology.Cols)
	if err != nil {
		return response{}, badRequest("%v", err)
	}
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	var buf bytes.Buffer
	if req.Hybrid {
		size := req.ElementSize
		if size == 0 {
			size = 4
		}
		sys, err := hybrid.New(g, hybrid.Config{
			ElementSize: size, Handshake: 0.5, LocalDistribution: 0.3,
			CellDelay: 2, HoldDelay: 0.5,
		})
		if err != nil {
			return response{}, unprocessable(err)
		}
		if err := viz.RenderHybrid(&buf, g, sys, req.Caption); err != nil {
			return response{}, err
		}
	} else {
		var tree *clocktree.Tree
		if req.Tree != "" && req.Tree != "none" {
			tree, err = buildTree(req.Tree, g, req.Equalize, req.Spacing)
			if err != nil {
				return response{}, err
			}
		}
		if err := viz.RenderGraphWithClock(&buf, g, tree, req.Caption); err != nil {
			return response{}, err
		}
	}
	return response{status: 200, contentType: "image/svg+xml", body: buf.Bytes()}, nil
}
