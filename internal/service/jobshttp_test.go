package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// streamEvent is the decoded shape of one NDJSON/SSE stream line.
type streamEvent struct {
	Seq     int64           `json:"seq"`
	State   string          `json:"state"`
	Done    int             `json:"trials_done"`
	Total   int             `json:"trials_total"`
	Partial *MCPartial      `json:"partial"`
	Result  json.RawMessage `json:"result"`
	Error   string          `json:"error"`
	Reason  string          `json:"reason"`
}

// readStream consumes GET /v1/jobs/{id}/stream to EOF — the handler
// returns after relaying the terminal event — and decodes every line.
func readStream(t *testing.T, url string) []streamEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q, want application/x-ndjson", ct)
	}
	var evs []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("stream delivered no events")
	}
	return evs
}

// createJob posts a job and returns its snapshot.
func createJob(t *testing.T, base, body string) jobSnapshot {
	t.Helper()
	resp, b := postJSON(t, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create job: status %d: %s", resp.StatusCode, b)
	}
	var snap jobSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("decoding job snapshot: %v\n%s", err, b)
	}
	if snap.ID == "" {
		t.Fatalf("job snapshot missing id: %s", b)
	}
	return snap
}

type jobSnapshot struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	State  string          `json:"state"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// An analyze job computes the same bytes as the synchronous endpoint:
// same kernels, same per-trial RNG forks, bit-identical document.
func TestJobResultMatchesAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	analyze := `{"topology":{"kind":"mesh","n":8},"trees":["htree","greedy"],"montecarlo_trials":32,"seed":7}`
	_, want := postJSON(t, ts.URL+"/v1/analyze", analyze)

	snap := createJob(t, ts.URL, fmt.Sprintf(`{"analyze":%s,"chunk_trials":8}`, analyze))
	evs := readStream(t, ts.URL+"/v1/jobs/"+snap.ID+"/stream")
	last := evs[len(evs)-1]
	if last.State != "done" {
		t.Fatalf("terminal state %q (error %q), want done", last.State, last.Error)
	}
	// The stream relay compacts embedded JSON, so compare the compacted
	// forms — still a byte-level check on every value, numbers included.
	var jobC, syncC bytes.Buffer
	if err := json.Compact(&jobC, last.Result); err != nil {
		t.Fatalf("compacting job result: %v", err)
	}
	if err := json.Compact(&syncC, want); err != nil {
		t.Fatalf("compacting sync result: %v", err)
	}
	if !bytes.Equal(jobC.Bytes(), syncC.Bytes()) {
		t.Fatalf("job result differs from POST /v1/analyze:\njob:  %.300s\nsync: %.300s", jobC.Bytes(), syncC.Bytes())
	}
	var got jobSnapshot
	getJSON(t, ts.URL+"/v1/jobs/"+snap.ID, &got)
	if got.State != "done" || len(got.Result) == 0 {
		t.Fatalf("snapshot after done: state=%q result-bytes=%d", got.State, len(got.Result))
	}
}

// ACCEPTANCE: the stream of a 1024² mesh Monte-Carlo job delivers
// monotonically tightening quantile estimates — gapless event sequence,
// strictly growing trial counts, ordered quantiles, a running maximum
// that never decreases, and a confidence interval that ends tighter
// than it started — and terminates with the full result document.
func TestJobStreamMonotone1024Mesh(t *testing.T) {
	if testing.Short() {
		t.Skip("1024x1024 kernel build is seconds of work; skipped in -short")
	}
	_, ts := newTestServer(t, Config{})
	body := `{"analyze":{"topology":{"kind":"mesh","n":1024},"trees":["htree"],"montecarlo_trials":64,"seed":3},"chunk_trials":8}`
	snap := createJob(t, ts.URL, body)
	evs := readStream(t, ts.URL+"/v1/jobs/"+snap.ID+"/stream")

	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d: stream is not gapless from 0", i, ev.Seq)
		}
	}
	var partials []*MCPartial
	lastDone := 0
	for _, ev := range evs {
		if ev.Partial == nil {
			continue
		}
		if ev.Done <= lastDone {
			t.Fatalf("trials_done %d after %d: progress must strictly increase", ev.Done, lastDone)
		}
		lastDone = ev.Done
		p := ev.Partial
		if !(p.P50 <= p.P90 && p.P90 <= p.P99 && p.P99 <= p.MaxSkew) {
			t.Fatalf("quantiles out of order at trials_done=%d: p50=%g p90=%g p99=%g max=%g",
				p.TrialsDone, p.P50, p.P90, p.P99, p.MaxSkew)
		}
		if n := len(partials); n > 0 && p.MaxSkew < partials[n-1].MaxSkew {
			t.Fatalf("max_skew decreased: %g after %g", p.MaxSkew, partials[n-1].MaxSkew)
		}
		partials = append(partials, p)
	}
	if len(partials) < 4 {
		t.Fatalf("got %d partial events, want at least 4 (64 trials / 8 per chunk)", len(partials))
	}
	first, final := partials[0], partials[len(partials)-1]
	if final.CI95 >= first.CI95 {
		t.Fatalf("confidence interval did not tighten: first half-width %g, final %g", first.CI95, final.CI95)
	}
	if final.TrialsDone != 64 {
		t.Fatalf("final partial covers %d trials, want 64", final.TrialsDone)
	}
	last := evs[len(evs)-1]
	if last.State != "done" || len(last.Result) == 0 {
		t.Fatalf("terminal event: state=%q result-bytes=%d error=%q", last.State, len(last.Result), last.Error)
	}
	var result struct {
		Results []struct {
			MonteCarloMaxSkew float64 `json:"montecarlo_max_skew"`
		} `json:"results"`
	}
	if err := json.Unmarshal(last.Result, &result); err != nil {
		t.Fatalf("decoding terminal result: %v", err)
	}
	if len(result.Results) != 1 || result.Results[0].MonteCarloMaxSkew != final.MaxSkew {
		t.Fatalf("terminal montecarlo_max_skew %v, want the last partial's max %g", result.Results, final.MaxSkew)
	}
}

// A simulate job runs the batch path to completion and stores its body.
func TestJobSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"simulate":{"topology":{"kind":"ring","n":16},"mode":"clock","trials":4}}`
	snap := createJob(t, ts.URL, body)
	if snap.Kind != "simulate" {
		t.Fatalf("kind %q, want simulate", snap.Kind)
	}
	evs := readStream(t, ts.URL+"/v1/jobs/"+snap.ID+"/stream")
	last := evs[len(evs)-1]
	if last.State != "done" || len(last.Result) == 0 {
		t.Fatalf("terminal event: state=%q result-bytes=%d error=%q", last.State, len(last.Result), last.Error)
	}
	var sim struct {
		Mode   string `json:"mode"`
		Trials int    `json:"trials"`
	}
	if err := json.Unmarshal(last.Result, &sim); err != nil {
		t.Fatalf("decoding simulate result: %v", err)
	}
	if sim.Mode != "clock" || sim.Trials != 4 {
		t.Fatalf("simulate result mode=%q trials=%d: %.200s", sim.Mode, sim.Trials, last.Result)
	}
}

// Re-posting identical work without an explicit ID lands on the same
// content-derived ID and answers 409 job_exists.
func TestJobDuplicate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"analyze":{"topology":{"kind":"mesh","n":6},"trees":["htree"],"montecarlo_trials":4}}`
	snap := createJob(t, ts.URL, body)
	resp, b := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate job: status %d, want 409: %s", resp.StatusCode, b)
	}
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Reason != ReasonJobExists {
		t.Fatalf("409 body %s, want reason %q", b, ReasonJobExists)
	}
	// An explicit distinct ID for the same work is accepted.
	snap2 := createJob(t, ts.URL, `{"id":"other","analyze":{"topology":{"kind":"mesh","n":6},"trees":["htree"],"montecarlo_trials":4}}`)
	if snap2.ID == snap.ID {
		t.Fatal("explicit ID was ignored")
	}
}

// DELETE cancels; unknown IDs answer 404 job_not_found on every route.
func TestJobCancelAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	snap := createJob(t, ts.URL, `{"analyze":{"topology":{"kind":"mesh","n":6},"trees":["htree"],"montecarlo_trials":4}}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	evs := readStream(t, ts.URL+"/v1/jobs/"+snap.ID+"/stream")
	last := evs[len(evs)-1]
	if last.State != "canceled" && last.State != "done" {
		// The tiny job may finish before the cancel lands; either terminal
		// state is legal, anything else is stuck.
		t.Fatalf("state after cancel: %q", last.State)
	}

	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/absent"},
		{http.MethodDelete, "/v1/jobs/absent"},
		{http.MethodGet, "/v1/jobs/absent/stream"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var eb ErrorBody
		err = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || err != nil || eb.Reason != ReasonJobNotFound {
			t.Fatalf("%s %s: status %d reason %q, want 404 %q", probe.method, probe.path, resp.StatusCode, eb.Reason, ReasonJobNotFound)
		}
	}
}

// Accept: text/event-stream switches the stream to SSE framing.
func TestJobStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	snap := createJob(t, ts.URL, `{"analyze":{"topology":{"kind":"mesh","n":6},"trees":["htree"],"montecarlo_trials":8},"chunk_trials":4}`)
	// Wait for completion first so the SSE read is bounded.
	readStream(t, ts.URL+"/v1/jobs/"+snap.ID+"/stream")

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+snap.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("SSE line without data: framing: %q", line)
		}
		var ev streamEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("SSE stream delivered no events")
	}
}

// Malformed job bodies answer 400 with reason bad_request.
func TestJobBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{`,
		`{}`,
		`{"analyze":{"topology":{"kind":"mesh","n":4}},"simulate":{"topology":{"kind":"ring","n":4},"scheme":"clock"}}`,
		`{"kind":"simulate","analyze":{"topology":{"kind":"mesh","n":4}}}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400: %s", body, resp.StatusCode, b)
		}
		var eb ErrorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Reason != ReasonBadRequest {
			t.Fatalf("body %q: error body %s, want reason %q", body, b, ReasonBadRequest)
		}
	}
}

// GET /v1/jobs lists tracked jobs, newest first.
func TestJobList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := createJob(t, ts.URL, `{"id":"a","analyze":{"topology":{"kind":"mesh","n":6},"trees":["htree"],"montecarlo_trials":2}}`)
	b := createJob(t, ts.URL, `{"id":"b","analyze":{"topology":{"kind":"mesh","n":7},"trees":["htree"],"montecarlo_trials":2}}`)
	var doc struct {
		Jobs []jobSnapshot `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &doc)
	if len(doc.Jobs) != 2 || doc.Jobs[0].ID != b.ID || doc.Jobs[1].ID != a.ID {
		t.Fatalf("job list %+v, want [b a]", doc.Jobs)
	}
}

// DisableJobs removes the /v1/jobs routes entirely.
func TestJobsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableJobs: true})
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("jobs disabled: status %d, want 404", resp.StatusCode)
	}
}
