package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

// syncWriter serializes writes and reads of the wrapped buffer: the
// handler's log write may race the client's next action otherwise.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.String()
}

// The ring must wrap cleanly past its capacity: lifetime count and sum
// keep growing while the quantile window holds only the most recent
// latencySamples observations.
func TestLatencyVarWraparound(t *testing.T) {
	l := &latencyVar{}
	total := latencySamples + 1234
	for i := 0; i < total; i++ {
		// Old samples are 1ms; the last full window is all 5ms, so the
		// post-wrap quantiles must see only 5s.
		v := 1.0
		if i >= total-latencySamples {
			v = 5.0
		}
		l.Observe(v)
	}
	count, sum, p50, p95, p99 := l.summary()
	if count != int64(total) {
		t.Fatalf("count = %d, want %d", count, total)
	}
	wantSum := float64(total-latencySamples)*1.0 + float64(latencySamples)*5.0
	if sum != wantSum {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
	for name, q := range map[string]float64{"p50": p50, "p95": p95, "p99": p99} {
		if q != 5.0 {
			t.Fatalf("%s = %g after wraparound, want 5 (window must hold only recent samples)", name, q)
		}
	}
}

// Observe and String must be safe to interleave (run under -race).
func TestLatencyVarConcurrent(t *testing.T) {
	l := &latencyVar{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Observe(float64(i%17) + 0.5)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var doc map[string]any
				if err := json.Unmarshal([]byte(l.String()), &doc); err != nil {
					t.Errorf("String not valid JSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	count, _, _, _, _ := l.summary()
	if count != 8000 {
		t.Fatalf("count = %d, want 8000", count)
	}
}

// The JSON /metrics document must now actually be indented (the comment
// always promised json.Indent) and remain valid JSON.
func TestMetricsSnapshotIndented(t *testing.T) {
	s := NewServer(Config{})
	snap := s.metrics.snapshot()
	if !json.Valid(snap) {
		t.Fatalf("snapshot is not valid JSON: %s", snap)
	}
	if !bytes.Contains(snap, []byte("\n  ")) {
		t.Fatalf("snapshot is not indented: %s", snap)
	}
}

// GET /metrics?format=prom must parse under the strict exposition parser
// and expose the acceptance families, including the eviction counter the
// LRU used to drop silently.
func TestMetricsPromExposition(t *testing.T) {
	s := NewServer(Config{CacheEntries: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Two distinct layout requests against a 1-entry cache force an
	// eviction; re-requesting the first after serves a cold miss.
	for _, q := range []string{"kind=linear&n=3", "kind=linear&n=4", "kind=linear&n=3"} {
		resp, body := getURL(t, ts.URL+"/v1/layout.svg?"+q)
		if resp.StatusCode != 200 {
			t.Fatalf("layout?%s: status %d: %s", q, resp.StatusCode, body)
		}
	}

	resp, body := getURL(t, ts.URL+"/metrics?format=prom")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	fams, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}

	want := map[string]float64{
		"requests_total":        3,
		"cache_hits_total":      0,
		"cache_evictions_total": 2, // n=4 evicts n=3, then n=3 evicts n=4
		"computes_total":        3,
		"in_flight":             0,
	}
	for name, v := range want {
		sm, ok := obs.FindProm(fams, name)
		if !ok {
			t.Fatalf("family %s missing from exposition:\n%s", name, body)
		}
		if sm.Value != v {
			t.Errorf("%s = %g, want %g", name, sm.Value, v)
		}
	}
	for _, suffix := range []string{"_sum", "_count"} {
		if _, ok := obs.FindProm(fams, "request_latency_ms", "endpoint", "layout", "__suffix__", suffix); !ok {
			t.Fatalf("request_latency_ms%s{endpoint=layout} missing:\n%s", suffix, body)
		}
	}
	if _, ok := obs.FindProm(fams, "request_latency_ms", "endpoint", "layout", "quantile", "0.99"); !ok {
		t.Fatalf("request_latency_ms p99 for layout missing:\n%s", body)
	}
}

// Requests are tagged with IDs: client-supplied X-Request-ID is echoed,
// otherwise the server assigns one; with a tracer configured the serve
// span records the ID, and a coalesced follower would record its leader.
func TestRequestIDsAndServeSpans(t *testing.T) {
	tr := obs.NewTracer()
	logbuf := &syncWriter{w: &bytes.Buffer{}}
	s := NewServer(Config{Tracer: tr, LogWriter: logbuf})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, _ := getURL(t, ts.URL+"/v1/layout.svg?kind=linear&n=3")
	assigned := resp.Header.Get("X-Request-ID")
	if assigned == "" {
		t.Fatalf("no X-Request-ID assigned")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/layout.svg?kind=linear&n=4", nil)
	req.Header.Set("X-Request-ID", "client-given-7")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-given-7" {
		t.Fatalf("X-Request-ID = %q, want echo of client-given-7", got)
	}

	if !strings.Contains(logbuf.String(), `"request_id":"client-given-7"`) {
		t.Fatalf("log lines missing request_id: %s", logbuf.String())
	}

	found := false
	for _, st := range tr.Summary() {
		if st.Name == "serve.layout" && st.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("serve.layout spans not recorded: %+v", tr.Summary())
	}
}
