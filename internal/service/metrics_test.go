package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

// syncWriter serializes writes and reads of the wrapped buffer: the
// handler's log write may race the client's next action otherwise.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.String()
}

// The ring must wrap cleanly past its capacity: lifetime count and sum
// keep growing while the quantile window holds only the most recent
// latencySamples observations.
func TestLatencyVarWraparound(t *testing.T) {
	l := &latencyVar{}
	total := latencySamples + 1234
	for i := 0; i < total; i++ {
		// Old samples are 1ms; the last full window is all 5ms, so the
		// post-wrap quantiles must see only 5s.
		v := 1.0
		if i >= total-latencySamples {
			v = 5.0
		}
		l.Observe(v)
	}
	count, sum, p50, p95, p99 := l.summary()
	if count != int64(total) {
		t.Fatalf("count = %d, want %d", count, total)
	}
	wantSum := float64(total-latencySamples)*1.0 + float64(latencySamples)*5.0
	if sum != wantSum {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
	for name, q := range map[string]float64{"p50": p50, "p95": p95, "p99": p99} {
		if q != 5.0 {
			t.Fatalf("%s = %g after wraparound, want 5 (window must hold only recent samples)", name, q)
		}
	}
}

// Observe and String must be safe to interleave (run under -race).
func TestLatencyVarConcurrent(t *testing.T) {
	l := &latencyVar{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Observe(float64(i%17) + 0.5)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var doc map[string]any
				if err := json.Unmarshal([]byte(l.String()), &doc); err != nil {
					t.Errorf("String not valid JSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	count, _, _, _, _ := l.summary()
	if count != 8000 {
		t.Fatalf("count = %d, want 8000", count)
	}
}

// The JSON /metrics document must now actually be indented (the comment
// always promised json.Indent) and remain valid JSON.
func TestMetricsSnapshotIndented(t *testing.T) {
	s := NewServer(Config{})
	snap := s.metrics.snapshot()
	if !json.Valid(snap) {
		t.Fatalf("snapshot is not valid JSON: %s", snap)
	}
	if !bytes.Contains(snap, []byte("\n  ")) {
		t.Fatalf("snapshot is not indented: %s", snap)
	}
}

// GET /metrics?format=prom must parse under the strict exposition parser
// and expose the acceptance families, including the eviction counter the
// LRU used to drop silently.
func TestMetricsPromExposition(t *testing.T) {
	s := NewServer(Config{CacheEntries: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Two distinct layout requests against a 1-entry cache force an
	// eviction; re-requesting the first after serves a cold miss.
	for _, q := range []string{"kind=linear&n=3", "kind=linear&n=4", "kind=linear&n=3"} {
		resp, body := getURL(t, ts.URL+"/v1/layout.svg?"+q)
		if resp.StatusCode != 200 {
			t.Fatalf("layout?%s: status %d: %s", q, resp.StatusCode, body)
		}
	}

	resp, body := getURL(t, ts.URL+"/metrics?format=prom")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	fams, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}

	want := map[string]float64{
		"requests_total":        3,
		"cache_hits_total":      0,
		"cache_evictions_total": 2, // n=4 evicts n=3, then n=3 evicts n=4
		"computes_total":        3,
		"in_flight":             0,
	}
	for name, v := range want {
		sm, ok := obs.FindProm(fams, name)
		if !ok {
			t.Fatalf("family %s missing from exposition:\n%s", name, body)
		}
		if sm.Value != v {
			t.Errorf("%s = %g, want %g", name, sm.Value, v)
		}
	}
	for _, suffix := range []string{"_sum", "_count"} {
		if _, ok := obs.FindProm(fams, "request_latency_ms", "endpoint", "layout", "__suffix__", suffix); !ok {
			t.Fatalf("request_latency_ms%s{endpoint=layout} missing:\n%s", suffix, body)
		}
	}
	if _, ok := obs.FindProm(fams, "request_latency_ms", "endpoint", "layout", "quantile", "0.99"); !ok {
		t.Fatalf("request_latency_ms p99 for layout missing:\n%s", body)
	}
}

// With the slow threshold at its floor every request is a capture: the
// flight recorder endpoint must return the request's whole span tree —
// with no trace export configured anywhere — and honor its filters.
// Flight recording works with no Config.Tracer because the server makes
// its own non-retaining one.
func TestFlightRecorderEndpoint(t *testing.T) {
	s := NewServer(Config{FlightSlow: time.Nanosecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/layout.svg?kind=linear&n=3", nil)
	req.Header.Set("X-Request-ID", "slow-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, body := getURL(t, ts.URL+"/debug/flightrecorder")
	if resp.StatusCode != 200 {
		t.Fatalf("flightrecorder: status %d: %s", resp.StatusCode, body)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("flightrecorder response not a snapshot: %v\n%s", err, body)
	}
	if len(snap.Captures) == 0 {
		t.Fatalf("no captures with a 1ns slow threshold:\n%s", body)
	}
	cap0 := snap.Captures[0]
	if cap0.Root != "serve.layout" || cap0.Reason != "slow" || cap0.TraceID == "" {
		t.Fatalf("capture %+v, want a slow serve.layout root with a trace ID", cap0)
	}
	foundID := false
	for _, sp := range cap0.Spans {
		if sp.Attrs["request_id"] == "slow-req-1" {
			foundID = true
		}
	}
	if !foundID {
		t.Fatalf("capture spans missing request_id attr: %+v", cap0.Spans)
	}

	// The attr filter narrows the recent-span view to the matching request.
	_, body = getURL(t, ts.URL+"/debug/flightrecorder?attr=request_id=slow-req-1")
	var filtered obs.FlightSnapshot
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Spans) == 0 {
		t.Fatalf("attr filter matched nothing:\n%s", body)
	}
	for _, sp := range filtered.Spans {
		if sp.Attrs["request_id"] != "slow-req-1" {
			t.Fatalf("filtered span leaked through: %+v", sp)
		}
	}

	// POST is refused; a disabled recorder 404s.
	pr, err := http.Post(ts.URL+"/debug/flightrecorder", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST flightrecorder: status %d", pr.StatusCode)
	}
	off := NewServer(Config{DisableFlight: true})
	tsOff := httptest.NewServer(off)
	defer tsOff.Close()
	resp, _ = getURL(t, tsOff.URL+"/debug/flightrecorder")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled flightrecorder: status %d, want 404", resp.StatusCode)
	}
}

// The fixed-bucket request_duration_ms family must appear in the prom
// exposition with cumulative buckets, a +Inf terminator, and at least
// one exemplar carrying a trace ID; the parser must round-trip it back
// into a histogram snapshot.
func TestMetricsPromHistogramWithExemplars(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, body := getURL(t, ts.URL+"/v1/layout.svg?kind=linear&n=3")
		if resp.StatusCode != 200 {
			t.Fatalf("layout: status %d: %s", resp.StatusCode, body)
		}
	}
	_, body := getURL(t, ts.URL+"/metrics?format=prom")
	fams, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	snap, ok := obs.PromHistogram(fams, "request_duration_ms", "endpoint", "layout")
	if !ok {
		t.Fatalf("request_duration_ms{endpoint=layout} missing:\n%s", body)
	}
	if snap.Count != 3 {
		t.Fatalf("histogram count %d, want 3", snap.Count)
	}
	hasExemplar := false
	for _, ex := range snap.Exemplars {
		if ex.TraceID != "" {
			hasExemplar = true
		}
	}
	if !hasExemplar {
		t.Fatalf("no exemplar with a trace ID in request_duration_ms:\n%s", body)
	}
	if p99 := snap.Quantile(0.99); math.IsNaN(p99) || p99 < 0 {
		t.Fatalf("p99 from scraped buckets = %v", p99)
	}
}

// The flat job lifecycle gauges and cumulative terminal counters must
// reach both expositions: the expvar JSON document and the prom text.
func TestJobGaugesExposed(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	job := `{"analyze":{"topology":{"kind":"linear","n":4},"trees":["htree"]}}`
	resp, body := getURL3(t, ts.URL+"/v1/jobs", job)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create: status %d: %s", resp.StatusCode, body)
	}
	waitJobsSettled(t, s)

	_, prom := getURL(t, ts.URL+"/metrics?format=prom")
	fams, err := obs.ParseProm(bytes.NewReader(prom))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, prom)
	}
	for name, want := range map[string]float64{
		"jobs_pending": 0, "jobs_running": 0, "jobs_done_total": 1,
		"jobs_failed_total": 0, "jobs_canceled_total": 0,
	} {
		sm, ok := obs.FindProm(fams, name)
		if !ok {
			t.Fatalf("family %s missing:\n%s", name, prom)
		}
		if sm.Value != want {
			t.Errorf("%s = %g, want %g", name, sm.Value, want)
		}
	}

	_, js := getURL(t, ts.URL+"/metrics")
	var doc map[string]any
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("expvar document: %v", err)
	}
	for _, key := range []string{"jobs_pending", "jobs_running", "jobs_done_total", "jobs_failed_total", "jobs_canceled_total"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("expvar document missing %s:\n%s", key, js)
		}
	}
	if got := doc["jobs_done_total"]; got != 1.0 {
		t.Fatalf("jobs_done_total = %v, want 1", got)
	}
}

// getURL3 POSTs a JSON body.
func getURL3(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

// waitJobsSettled polls until no job is pending or running.
func waitJobsSettled(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c := s.jobs.Counts()
		if c.Pending == 0 && c.Running == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never settled: %+v", c)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Requests are tagged with IDs: client-supplied X-Request-ID is echoed,
// otherwise the server assigns one; with a tracer configured the serve
// span records the ID, and a coalesced follower would record its leader.
func TestRequestIDsAndServeSpans(t *testing.T) {
	tr := obs.NewTracer()
	logbuf := &syncWriter{w: &bytes.Buffer{}}
	s := NewServer(Config{Tracer: tr, LogWriter: logbuf})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, _ := getURL(t, ts.URL+"/v1/layout.svg?kind=linear&n=3")
	assigned := resp.Header.Get("X-Request-ID")
	if assigned == "" {
		t.Fatalf("no X-Request-ID assigned")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/layout.svg?kind=linear&n=4", nil)
	req.Header.Set("X-Request-ID", "client-given-7")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-given-7" {
		t.Fatalf("X-Request-ID = %q, want echo of client-given-7", got)
	}

	if !strings.Contains(logbuf.String(), `"request_id":"client-given-7"`) {
		t.Fatalf("log lines missing request_id: %s", logbuf.String())
	}

	found := false
	for _, st := range tr.Summary() {
		if st.Name == "serve.layout" && st.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("serve.layout spans not recorded: %+v", tr.Summary())
	}
}
