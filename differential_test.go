package vlsisync

// Differential tests: a clocked machine driven with zero skew (uniform
// zero offsets) must produce a trace byte-identical to the ideal
// lock-step semantics of A1, for every workload shape the examples
// exercise — the 1D FIR filter, the mesh matrix multiplier, the
// hexagonal band multiplier, and a tree-shaped reduction machine. Any
// divergence at tolerance 0 means the clocked electrical model (latch
// times, setup/hold windows, host scheduling) disagrees with the
// abstract semantics even without skew — a bug in the execution layer,
// not a synchronization failure.

import (
	"fmt"
	"testing"

	"repro/internal/array"
	"repro/internal/comm"
	"repro/internal/geom"
	"repro/internal/systolic"
)

// safeTiming is a clocked timing that satisfies A5 trivially at zero
// skew: the period exceeds the cell delay, and the hold window is
// irrelevant because all cells tick simultaneously.
var safeTiming = array.Timing{Period: 3, CellDelay: 2, HoldDelay: 0.5}

// runBoth executes m under ideal lock step and under a zero-skew clock
// and requires the traces to match exactly (tolerance 0).
func runBoth(t *testing.T, m *array.Machine, cycles int) {
	t.Helper()
	ideal, err := m.RunIdeal(cycles)
	if err != nil {
		t.Fatal(err)
	}
	clocked, err := m.RunClocked(cycles, safeTiming, array.UniformOffsets(m.NumCells()))
	if err != nil {
		t.Fatal(err)
	}
	if !clocked.Equal(ideal, 0) {
		t.Fatalf("zero-skew clocked trace differs from ideal lock step")
	}
}

// treeReduceMachine builds a complete-binary-tree array machine of the
// given depth by hand: commands flow from the host at the root down to
// the leaves, partial sums flow back up (the treemachine example's
// shape, expressed as an array.Machine). Parent→child edges are
// labelled by side ("dl"/"dr") and child→parent edges likewise
// ("ul"/"ur") so that every cell's in- and out-edge label sets are
// duplicate-free, which array.New requires.
func treeReduceMachine(depth int) (*array.Machine, error) {
	n := 1<<(depth+1) - 1
	g := &comm.Graph{Kind: comm.KindTree, Name: fmt.Sprintf("reduce-tree-%d", depth)}
	level, width := 0, 1
	for i := 0; i < n; i++ {
		if i >= 2*width-1 {
			level++
			width *= 2
		}
		g.Cells = append(g.Cells, comm.Cell{
			ID:  comm.CellID(i),
			Pos: geom.Pt(float64(n)*float64(i-(width-1))/float64(width), float64(level)),
		})
	}
	g.Edges = append(g.Edges,
		comm.Edge{From: comm.Host, To: 0, Label: "d"},
		comm.Edge{From: 0, To: comm.Host, Label: "u"})
	for i := 0; i < n; i++ {
		l, r := 2*i+1, 2*i+2
		if l < n {
			g.Edges = append(g.Edges,
				comm.Edge{From: comm.CellID(i), To: comm.CellID(l), Label: "dl"},
				comm.Edge{From: comm.CellID(l), To: comm.CellID(i), Label: "ul"})
		}
		if r < n {
			g.Edges = append(g.Edges,
				comm.Edge{From: comm.CellID(i), To: comm.CellID(r), Label: "dr"},
				comm.Edge{From: comm.CellID(r), To: comm.CellID(i), Label: "ur"})
		}
	}
	logic := func(id comm.CellID) array.Logic {
		w := float64(id%7) + 1
		return array.LogicFunc(func(in map[string]array.Value) map[string]array.Value {
			// The command is whichever downstream label arrived; leaves
			// and internal nodes alike scale it and add their children's
			// partial sums (absent labels read as 0).
			cmd := in["d"] + in["dl"] + in["dr"]
			up := w*cmd + in["ul"] + in["ur"]
			return map[string]array.Value{
				"dl": cmd/2 + w, "dr": cmd/3 - w,
				"ul": up, "ur": up, "u": up,
			}
		})
	}
	inputs := map[array.HostIn]array.Stream{
		{To: 0, Label: "d"}: func(k int) array.Value { return float64(k%4) + 0.25 },
	}
	return array.New(g, logic, inputs)
}

func TestDifferentialFIR(t *testing.T) {
	fir, err := systolic.NewFIR([]float64{1, -2, 0.5, 0.25}, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, fir.Machine, fir.Cycles)
}

func TestDifferentialMatMul(t *testing.T) {
	a, b := systolic.NewMatrix(4, 4), systolic.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64(i*4+j)/3-1)
			b.Set(i, j, float64((i+2)*(j+1))/5)
		}
	}
	mm, err := systolic.NewMatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, mm.Machine, mm.Cycles)
}

func TestDifferentialHexBand(t *testing.T) {
	gen := func(i, j int) float64 { return float64(i+1)/float64(j+2) + float64((i*j)%3) }
	a := systolic.NewBandMatrix(5, 1, 1, gen)
	b := systolic.NewBandMatrix(5, 1, 1, func(i, j int) float64 { return gen(j, i) - 0.5 })
	bm, err := systolic.NewBandMatMul(a, b, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, bm.Machine, bm.Cycles)
}

func TestDifferentialTreeMachine(t *testing.T) {
	for _, depth := range []int{1, 3} {
		m, err := treeReduceMachine(depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		runBoth(t, m, 20)
	}
}
