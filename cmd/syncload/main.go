// Command syncload drives a running syncd with an open-loop workload
// and reports latency quantiles per endpoint.
//
// Open-loop means arrivals follow a fixed schedule (-qps) regardless of
// how fast the server answers: a slow server accumulates queueing delay
// in the reported latency instead of silently throttling the offered
// load, which is how production traffic actually behaves. Latency is
// measured from each request's scheduled arrival time, so coordinated
// omission is accounted for.
//
// Usage:
//
//	syncload [-url http://127.0.0.1:8080] [-qps 50] [-duration 10s]
//	         [-concurrency 16] [-mix plan=4,analyze=3,simulate=2,batch=1,layout=1]
//	         [-variants 8] [-seed 1] [-json] [-cpuprofile load.pprof]
//	         [-cluster http://h1:8080,http://h2:8080,http://h3:8080]
//
// With -cluster the workload round-robins across the listed nodes —
// every node sees every kind of request, which is exactly the situation
// consistent-hash routing exists for — and the report gains a per-node
// breakdown of kernel builds, peer forwards, and cache fills scraped
// from each node's /metrics, so a run shows whether the cluster built
// each distinct kernel once or once per node. It also scrapes every
// node's Prometheus exposition and sums the fixed-bucket
// request_duration_ms histograms into one fleet-wide latency
// distribution (true cluster p50/p99 with trace-ID exemplar counts),
// reported as fleet_latency in the JSON document.
//
// With -json the report is a single typed document with a per-endpoint
// latency breakdown (requests, errors, cache hits, coalesced, p50/p95/
// p99/max) plus the overall row and achieved throughput — the format
// committed as BENCH_serve.json. -cpuprofile writes a pprof CPU profile
// of the generator itself, for checking that the load driver is not the
// bottleneck at high -qps.
//
// The request pool holds -variants distinct bodies per endpoint,
// generated deterministically from -seed, so a fraction of requests
// repeat and exercise the server's result cache the way real clients
// with overlapping queries would.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/stats"
)

type shot struct {
	endpoint  string
	method    string
	path      string // path + query for GETs
	body      string
	base      string // node base URL this shot is aimed at
	scheduled time.Time
}

type outcome struct {
	endpoint string
	status   int
	cache    string // X-Cache header: hit, miss, coalesced
	err      bool
	latency  float64 // ms, from scheduled arrival
}

func main() {
	baseURL := flag.String("url", "http://127.0.0.1:8080", "syncd base URL")
	qps := flag.Float64("qps", 50, "offered load, requests per second")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer load")
	concurrency := flag.Int("concurrency", 16, "maximum in-flight requests")
	mix := flag.String("mix", "plan=4,analyze=3,simulate=2,batch=1,layout=1", "endpoint weights")
	variants := flag.Int("variants", 8, "distinct request bodies per endpoint")
	seed := flag.Int64("seed", 1, "workload generation seed")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of a table")
	cpuprofile := flag.String("cpuprofile", "", "write the generator's CPU profile (pprof format) to this file")
	clusterURLs := flag.String("cluster", "", "comma-separated node base URLs; requests round-robin across them (overrides -url)")
	flag.Parse()

	if *qps <= 0 || *duration <= 0 || *concurrency < 1 || *variants < 1 {
		fail(fmt.Errorf("need qps > 0, duration > 0, concurrency ≥ 1, variants ≥ 1"))
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}
	bases := []string{*baseURL}
	if *clusterURLs != "" {
		bases = bases[:0]
		for _, u := range strings.Split(*clusterURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				bases = append(bases, strings.TrimRight(u, "/"))
			}
		}
		if len(bases) == 0 {
			fail(fmt.Errorf("-cluster %q names no nodes", *clusterURLs))
		}
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fail(err)
	}
	pool := buildPool(*variants)
	rng := stats.NewRNG(*seed)
	total := int(float64(*duration/time.Second) * *qps)
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / *qps)

	// Pre-draw the whole workload so the arrival goroutine does no RNG
	// work on the critical path.
	endpoints := weightedSequence(weights, total, rng)
	picks := make([]int, total)
	for i := range picks {
		picks[i] = rng.Intn(*variants)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	shots := make(chan shot, *concurrency)
	outcomes := make(chan outcome, total)

	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range shots {
				outcomes <- fire(client, sh.base, sh)
			}
		}()
	}

	start := time.Now()
	for i := 0; i < total; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		ep := endpoints[i]
		v := pool[ep][picks[i]]
		shots <- shot{endpoint: ep, method: v.method, path: v.path, body: v.body,
			base: bases[i%len(bases)], scheduled: scheduled}
	}
	close(shots)
	wg.Wait()
	elapsed := time.Since(start)
	close(outcomes)

	byEndpoint := map[string][]outcome{}
	for o := range outcomes {
		byEndpoint[o.endpoint] = append(byEndpoint[o.endpoint], o)
	}
	nodes := make([]nodeStats, 0, len(bases))
	var kHits, kMisses int64
	for _, b := range bases {
		ns := scrapeNode(client, b)
		kHits += ns.KernelCacheHits
		kMisses += ns.KernelCacheMisses
		nodes = append(nodes, ns)
	}
	var fleet *fleetLatency
	if *clusterURLs == "" {
		nodes = nil // single-node report keeps its original shape
	} else {
		fleet = scrapeFleetLatency(client, bases)
	}
	render(byEndpoint, elapsed, *qps, *jsonOut, kHits, kMisses, nodes, fleet)
}

// fleetLatency is the cluster-wide request-latency view assembled by
// summing every node's fixed-bucket request_duration_ms histograms —
// identical bucket layouts make the per-node scrapes directly
// addable, which per-node summary quantiles never are.
type fleetLatency struct {
	Samples   uint64  `json:"samples"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Exemplars int     `json:"exemplars"`
}

// scrapeFleetLatency pulls each node's Prometheus exposition, rebuilds
// the per-endpoint request_duration_ms histograms, and merges all of
// them into one fleet distribution. Nil when no node exposed buckets
// (old servers, or every scrape failed) — the load results stand alone.
func scrapeFleetLatency(client *http.Client, bases []string) *fleetLatency {
	var snaps []obs.HistogramSnapshot
	for _, b := range bases {
		resp, err := client.Get(b + "/metrics?format=prom")
		if err != nil {
			continue
		}
		fams, err := obs.ParseProm(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, ep := range histogramEndpoints(fams, "request_duration_ms") {
			if s, ok := obs.PromHistogram(fams, "request_duration_ms", "endpoint", ep); ok {
				snaps = append(snaps, s)
			}
		}
	}
	if len(snaps) == 0 {
		return nil
	}
	merged, err := obs.MergeHistograms(snaps...)
	if err != nil || merged.Count == 0 {
		return nil
	}
	fl := &fleetLatency{
		Samples: merged.Count,
		P50Ms:   round2(merged.Quantile(0.5)),
		P99Ms:   round2(merged.Quantile(0.99)),
	}
	for _, ex := range merged.Exemplars {
		if ex.TraceID != "" {
			fl.Exemplars++
		}
	}
	return fl
}

// histogramEndpoints lists the distinct endpoint label values under the
// named histogram family.
func histogramEndpoints(fams []obs.PromMetric, name string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			for _, kv := range s.Labels {
				if kv[0] == "endpoint" && !seen[kv[1]] {
					seen[kv[1]] = true
					out = append(out, kv[1])
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// nodeStats is one node's post-run counter scrape: the kernel-cache
// counters every report carries, plus the cluster counters that show
// whether routing did its job (forwards sum over the per-peer map).
type nodeStats struct {
	URL               string `json:"url"`
	KernelCacheHits   int64  `json:"kernel_cache_hits"`
	KernelCacheMisses int64  `json:"kernel_cache_misses"`
	Forwards          int64  `json:"cluster_forwards"`
	ForwardErrors     int64  `json:"cluster_forward_errors"`
	Hedges            int64  `json:"cluster_hedges"`
	HedgeWins         int64  `json:"cluster_hedge_wins"`
	CacheFills        int64  `json:"cluster_cache_fills"`
}

// scrapeNode reads one node's /metrics document. A failed scrape
// reports zeros rather than failing the run — the load results are
// still valid.
func scrapeNode(client *http.Client, base string) nodeStats {
	ns := nodeStats{URL: base}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return ns
	}
	defer resp.Body.Close()
	var doc struct {
		Hits          int64            `json:"kernel_cache_hits"`
		Misses        int64            `json:"kernel_cache_misses"`
		Forwards      map[string]int64 `json:"cluster_forward_total"`
		ForwardErrors int64            `json:"cluster_forward_errors_total"`
		Hedges        int64            `json:"cluster_hedge_total"`
		HedgeWins     int64            `json:"cluster_hedge_wins_total"`
		CacheFills    int64            `json:"cluster_cache_fill_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return ns
	}
	ns.KernelCacheHits, ns.KernelCacheMisses = doc.Hits, doc.Misses
	ns.ForwardErrors, ns.Hedges, ns.HedgeWins, ns.CacheFills = doc.ForwardErrors, doc.Hedges, doc.HedgeWins, doc.CacheFills
	for _, n := range doc.Forwards {
		ns.Forwards += n
	}
	return ns
}

// variant is one concrete request in the pool.
type variant struct {
	method string
	path   string
	body   string
}

// buildPool returns n distinct request bodies per endpoint. Sizes and
// seeds are derived from the variant index, so the pool is the same for
// every run — cache hit rates depend only on the workload mix, not on
// the wall clock.
func buildPool(n int) map[string][]variant {
	pool := map[string][]variant{}
	for i := 0; i < n; i++ {
		side := 3 + i%4 // mesh sides 3..6
		trials := 64
		if i >= 8 {
			// Variants past the original eight sweep distinct large
			// meshes with very few trials, so a high -variants run is
			// kernel-construction-heavy and carries a working set
			// bigger than one node's -kernel-cache — the regime the
			// cluster bench exercises. The first eight stay exactly as
			// they always were, keeping default runs comparable across
			// the committed BENCH_serve.json trajectory.
			side = 88 + 4*(i-8)
			trials = 4
		}
		ring := 8 + 2*(i%5)
		pool["plan"] = append(pool["plan"], variant{
			method: "POST", path: "/v1/plan",
			body: fmt.Sprintf(`{"topology":{"kind":"mesh","n":%d},"eps":%g}`, side, 0.1+0.05*float64(i%3)),
		})
		pool["analyze"] = append(pool["analyze"], variant{
			method: "POST", path: "/v1/analyze",
			body: fmt.Sprintf(`{"topology":{"kind":"mesh","n":%d},"trees":["htree","spine"],"montecarlo_trials":%d,"seed":%d}`, side, trials, i+1),
		})
		pool["simulate"] = append(pool["simulate"], variant{
			method: "POST", path: "/v1/simulate",
			body: fmt.Sprintf(`{"topology":{"kind":"ring","n":%d},"tree":"spine","regime":"random","trials":16,"seed":%d,"params":{"m":1,"eps":0.2}}`, ring, i+1),
		})
		pool["batch"] = append(pool["batch"], variant{
			method: "POST", path: "/v1/simulate",
			body: fmt.Sprintf(`{"topology":{"kind":"mesh","n":%d},"configs":[`+
				`{"regime":"nominal"},`+
				`{"regime":"random","trials":16,"seed":%d,"params":{"m":1,"eps":0.2}},`+
				`{"regime":"random","trials":16,"seed":%d,"params":{"m":1,"eps":0.2}},`+
				`{"mode":"hybrid","seed":%d,"hybrid":{"element_size":3,"waves":16}}]}`,
				side, i+1, i+2, i+1),
		})
		pool["layout"] = append(pool["layout"], variant{
			method: "GET",
			path:   fmt.Sprintf("/v1/layout.svg?kind=mesh&n=%d&tree=htree", side),
		})
	}
	return pool
}

func parseMix(s string) (map[string]int, error) {
	known := map[string]bool{"plan": true, "analyze": true, "simulate": true, "batch": true, "layout": true}
	weights := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("mix names unknown endpoint %q (want plan, analyze, simulate, batch, layout)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight for %s must be a non-negative integer, got %q", name, val)
		}
		if w > 0 {
			weights[name] = w
		}
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("mix %q selects no endpoints", s)
	}
	return weights, nil
}

// weightedSequence draws total endpoint names according to weights.
func weightedSequence(weights map[string]int, total int, rng *stats.RNG) []string {
	names := make([]string, 0, len(weights))
	for n := range weights {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic draw order across runs
	sum := 0
	for _, n := range names {
		sum += weights[n]
	}
	seq := make([]string, total)
	for i := range seq {
		r := rng.Intn(sum)
		for _, n := range names {
			if r -= weights[n]; r < 0 {
				seq[i] = n
				break
			}
		}
	}
	return seq
}

func fire(client *http.Client, base string, sh shot) outcome {
	out := outcome{endpoint: sh.endpoint}
	var resp *http.Response
	var err error
	if sh.method == "GET" {
		resp, err = client.Get(base + sh.path)
	} else {
		resp, err = client.Post(base+sh.path, "application/json", strings.NewReader(sh.body))
	}
	out.latency = float64(time.Since(sh.scheduled).Nanoseconds()) / 1e6
	if err != nil {
		out.err = true
		return out
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	out.status = resp.StatusCode
	out.cache = resp.Header.Get("X-Cache")
	if out.status >= 400 {
		out.err = true
	}
	return out
}

// endpointReport is one endpoint's latency breakdown with typed fields,
// so downstream tooling (the committed BENCH_serve.json trajectory)
// can compare plan vs. simulate cost without re-parsing table strings.
type endpointReport struct {
	Endpoint  string  `json:"endpoint"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Hits      int     `json:"hits"`
	Coalesced int     `json:"coalesced"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// loadReport is the full -json document: run-level throughput plus the
// per-endpoint breakdown and the overall row.
type loadReport struct {
	Title       string           `json:"title"`
	OfferedQPS  float64          `json:"offered_qps"`
	AchievedQPS float64          `json:"achieved_qps"`
	Completed   int              `json:"completed"`
	Errors      int              `json:"errors"`
	ElapsedS    float64          `json:"elapsed_s"`
	Endpoints   []endpointReport `json:"endpoints"`
	Overall     endpointReport   `json:"overall"`
	// Server-side skew-kernel cache counters scraped from /metrics after
	// the run (zero when the scrape fails or the server predates them).
	// In -cluster mode these are sums over every node.
	KernelCacheHits   int64 `json:"kernel_cache_hits"`
	KernelCacheMisses int64 `json:"kernel_cache_misses"`
	// Nodes is the per-node scrape, present only in -cluster mode.
	Nodes []nodeStats `json:"nodes,omitempty"`
	// Fleet is the server-side latency distribution summed across every
	// node's fixed-bucket histograms, present only in -cluster mode.
	Fleet *fleetLatency `json:"fleet_latency,omitempty"`
}

func summarize(name string, os []outcome) endpointReport {
	lats := make([]float64, 0, len(os))
	r := endpointReport{Endpoint: name, Requests: len(os)}
	for _, o := range os {
		lats = append(lats, o.latency)
		if o.err {
			r.Errors++
		}
		switch o.cache {
		case "hit":
			r.Hits++
		case "coalesced":
			r.Coalesced++
		}
	}
	qs := stats.Percentiles(lats, 50, 95, 99)
	r.P50Ms, r.P95Ms, r.P99Ms = round2(qs[0]), round2(qs[1]), round2(qs[2])
	r.MaxMs = round2(stats.Max(lats))
	return r
}

// round2 keeps the JSON at the same 0.01ms resolution the table prints.
func round2(v float64) float64 {
	s := fmt.Sprintf("%.2f", v)
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

func render(byEndpoint map[string][]outcome, elapsed time.Duration, offeredQPS float64, asJSON bool, kernelHits, kernelMisses int64, nodes []nodeStats, fleet *fleetLatency) {
	names := make([]string, 0, len(byEndpoint))
	for n := range byEndpoint {
		names = append(names, n)
	}
	sort.Strings(names)

	rep := loadReport{
		Title:      "syncload: open-loop latency by endpoint",
		OfferedQPS: offeredQPS,
		ElapsedS:   round2(elapsed.Seconds()),
	}
	for _, n := range names {
		rep.Endpoints = append(rep.Endpoints, summarize(n, byEndpoint[n]))
	}
	rep.Overall = summarize("overall", flatten(byEndpoint, names))
	rep.Completed = rep.Overall.Requests
	rep.Errors = rep.Overall.Errors
	rep.AchievedQPS = round2(float64(rep.Completed) / elapsed.Seconds())
	rep.KernelCacheHits, rep.KernelCacheMisses = kernelHits, kernelMisses
	rep.Nodes = nodes
	rep.Fleet = fleet

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	t := report.NewTable(rep.Title,
		"endpoint", "requests", "errors", "hits", "coalesced", "p50_ms", "p95_ms", "p99_ms", "max_ms")
	for _, er := range append(rep.Endpoints, rep.Overall) {
		t.AddRow(er.Endpoint, er.Requests, er.Errors, er.Hits, er.Coalesced,
			fmt.Sprintf("%.2f", er.P50Ms),
			fmt.Sprintf("%.2f", er.P95Ms),
			fmt.Sprintf("%.2f", er.P99Ms),
			fmt.Sprintf("%.2f", er.MaxMs))
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Printf("\noffered %.1f req/s, achieved %.1f req/s; %d completed, %d errors in %.1fs\n",
		rep.OfferedQPS, rep.AchievedQPS, rep.Completed, rep.Errors, elapsed.Seconds())
	if kernelHits+kernelMisses > 0 {
		fmt.Printf("server kernel cache: %d hits, %d misses\n", kernelHits, kernelMisses)
	}
	for _, n := range nodes {
		fmt.Printf("node %s: kernel %d/%d hit/miss, forwards %d (errors %d), hedges %d (won %d), cache fills %d\n",
			n.URL, n.KernelCacheHits, n.KernelCacheMisses, n.Forwards, n.ForwardErrors, n.Hedges, n.HedgeWins, n.CacheFills)
	}
	if fleet != nil {
		fmt.Printf("fleet server-side latency (summed histograms): %d samples, p50 %.2fms, p99 %.2fms, %d exemplars\n",
			fleet.Samples, fleet.P50Ms, fleet.P99Ms, fleet.Exemplars)
	}
}

func flatten(byEndpoint map[string][]outcome, names []string) []outcome {
	var all []outcome
	for _, n := range names {
		all = append(all, byEndpoint[n]...)
	}
	return all
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "syncload:", err)
	os.Exit(1)
}
