// Command invchain runs the Section VII inverter-string experiment:
// equipotential vs pipelined clocking of a long buffered clock line.
//
// Usage:
//
//	invchain [-n 2048] [-chips 5] [-jitter 0] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/wiresim"
)

func main() {
	n := flag.Int("n", 2048, "inverter count")
	chips := flag.Int("chips", 5, "number of seeded chips to fabricate")
	jitter := flag.Float64("jitter", 0, "per-event delay jitter sd (violates A8 when > 0)")
	sweep := flag.Bool("sweep", false, "sweep string length instead of a single point")
	flag.Parse()

	if *sweep {
		runSweep()
		return
	}

	cfg := wiresim.SectionVIIConfig()
	cfg.N = *n
	tbl := report.NewTable(
		fmt.Sprintf("Section VII inverter string, n=%d (times in ns)", *n),
		"chip", "equipotential", "pipelined", "speedup")
	for seed := int64(0); seed < int64(*chips); seed++ {
		s, err := wiresim.NewString(cfg, stats.NewRNG(seed))
		if err != nil {
			fail(err)
		}
		equi := s.EquipotentialCycle() * 1e9
		pipe := s.MinPipelinedPeriod() * 1e9
		tbl.AddRow(seed, equi, pipe, equi/pipe)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}

	// Event-level verification of the closed-form period, plus the A8
	// failure mode if requested.
	s, err := wiresim.NewString(cfg, stats.NewRNG(0))
	if err != nil {
		fail(err)
	}
	res, err := s.PipelinedRun(s.MinPipelinedPeriod()*1.01, 10, *jitter, stats.NewRNG(99))
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nevent simulation at 1.01x the closed-form period: %d edges delivered, "+
		"%d violations, min spacing %.3g ns\n",
		res.EdgesDelivered, res.Violations, res.MinSpacing*1e9)
	if *jitter > 0 && res.Violations > 0 {
		fmt.Println("time-varying delays (A8 violated) broke pipelined clocking, " +
			"as Section VI anticipates")
	}
}

func runSweep() {
	tbl := report.NewTable("cycle time vs string length (times in ns)",
		"n", "equipotential", "pipelined", "speedup")
	for _, n := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		cfg := wiresim.SectionVIIConfig()
		cfg.N = n
		s, err := wiresim.NewString(cfg, stats.NewRNG(1))
		if err != nil {
			fail(err)
		}
		equi := s.EquipotentialCycle() * 1e9
		pipe := s.MinPipelinedPeriod() * 1e9
		tbl.AddRow(n, equi, pipe, equi/pipe)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "invchain:", err)
	os.Exit(1)
}
