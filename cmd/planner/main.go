// Command planner runs the synchronization planner (the paper's decision
// procedure) on a topology and prints the prescribed scheme, the skew and
// period accounting, and the rationale.
//
// Usage:
//
//	planner [-topology linear|ring|mesh|hex|torus|tree] [-n 16]
//	        [-model difference|summation|nopipelining]
//	        [-m 1] [-eps 0.1] [-delta 2] [-spacing 1] [-alpha 1] [-json]
//
// With -json the plan is printed in the same encoding that syncd's
// POST /v1/plan returns, so scripts can treat the CLI and the service
// interchangeably.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	vlsisync "repro"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	topology := flag.String("topology", "mesh", "array topology: linear, ring, mesh, hex, torus, tree")
	n := flag.Int("n", 16, "array size")
	model := flag.String("model", "summation", "regime: difference, summation, nopipelining")
	m := flag.Float64("m", 1, "wire delay per unit length")
	eps := flag.Float64("eps", 0.1, "wire delay variation per unit length (β)")
	delta := flag.Float64("delta", 2, "cell compute+propagate delay δ")
	spacing := flag.Float64("spacing", 1, "clock buffer spacing (A7)")
	alpha := flag.Float64("alpha", 1, "equipotential time per unit path (A6)")
	jsonOut := flag.Bool("json", false, "print the plan as JSON (the syncd /v1/plan encoding)")
	assumptions := flag.Bool("assumptions", false, "print the paper's assumptions A1-A11 with their implementations and exit")
	tracePath := flag.String("trace", "", "write the planner's spans as Chrome trace_event JSON to this file")
	flag.Parse()

	if *assumptions {
		for _, a := range vlsisync.Assumptions11() {
			fmt.Printf("%-4s %s\n", a.ID, a.Statement)
			fmt.Printf("     implemented by: %s\n", a.Implementation)
			if len(a.Experiments) > 0 {
				fmt.Printf("     exercised by experiments: %v\n", a.Experiments)
			}
			fmt.Println()
		}
		return
	}

	g, err := comm.Build(*topology, *n, 0, 0)
	if err != nil {
		fail(err)
	}

	a := vlsisync.Assumptions{
		Model:         core.ModelKind(*model),
		M:             *m,
		Eps:           *eps,
		Delta:         *delta,
		BufferSpacing: *spacing,
		Alpha:         *alpha,
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	plan, err := vlsisync.PlanSynchronizationCtx(ctx, g, a)
	if err != nil {
		fail(err)
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteTrace(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	if *jsonOut {
		if err := service.EncodePlan(os.Stdout, plan); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("array:    %s (%d cells)\n", g.Name, g.NumCells())
	fmt.Printf("regime:   %s model\n", *model)
	fmt.Printf("scheme:   %s\n", plan.Scheme)
	fmt.Printf("σ (skew): %.4g\n", plan.Sigma)
	fmt.Printf("τ (dist): %.4g\n", plan.Tau)
	fmt.Printf("period:   %.4g  (size-independent: %v)\n", plan.Period, plan.SizeIndependent)
	if plan.CertifiedSkewLowerBound > 0 {
		fmt.Printf("certified global-clock skew lower bound (Section V-B): %.4g\n",
			plan.CertifiedSkewLowerBound)
	}
	if plan.Hybrid != nil {
		fmt.Printf("hybrid:   %d elements, largest %d cells\n",
			plan.Hybrid.NumElements(), plan.Hybrid.MaxElementCells())
	}
	fmt.Printf("\n%s\n", plan.Rationale)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "planner:", err)
	os.Exit(1)
}
