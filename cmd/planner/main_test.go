package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	vlsisync "repro"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/service"
)

var update = flag.Bool("update", false, "rewrite golden files")

// plans the golden suite covers: one per planner regime.
var goldenCases = []struct {
	name     string
	topology string
	n        int
	model    core.ModelKind
	alpha    float64
}{
	{"linear16_summation", "linear", 16, core.SummationModel, 0},
	{"mesh8_summation", "mesh", 8, core.SummationModel, 0},
	{"mesh8_difference", "mesh", 8, core.DifferenceModel, 0},
	{"ring12_nopipelining", "ring", 12, core.NoPipelining, 1},
}

// TestPlanJSONGolden pins the exact -json output. The same encoder
// backs syncd's POST /v1/plan, so a golden drift here means the service
// wire format changed too — bump both deliberately or not at all.
func TestPlanJSONGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := comm.Build(tc.topology, tc.n, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := vlsisync.PlanSynchronization(g, vlsisync.Assumptions{
				Model: tc.model, M: 1, Eps: 0.1, Delta: 2, BufferSpacing: 1, Alpha: tc.alpha,
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := service.EncodePlan(&buf, plan); err != nil {
				t.Fatal(err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatalf("EncodePlan emitted invalid JSON:\n%s", buf.String())
			}

			golden := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run go test ./cmd/planner -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("plan JSON drifted from golden %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestPlanJSONFieldNames guards the snake_case wire contract clients
// depend on.
func TestPlanJSONFieldNames(t *testing.T) {
	g, err := comm.Build("mesh", 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := vlsisync.PlanSynchronization(g, vlsisync.Assumptions{
		Model: core.SummationModel, M: 1, Eps: 0.1, Delta: 2, BufferSpacing: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := service.EncodePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"scheme", "sigma", "tau", "period", "size_independent", "rationale"} {
		if _, ok := doc[field]; !ok {
			t.Errorf("plan JSON missing field %q:\n%s", field, buf.String())
		}
	}
}
