// Command scalesweep finds the size ceiling: it sweeps every engine
// entry point over a ladder of array sizes and topologies, records
// per-op cost and memory at each size, fits growth exponents, and
// writes a BENCH_scale.json-style report. With -baseline it compares
// fitted growth classes against a committed report and exits non-zero
// on asymptotic regressions for the gated engines.
//
// Usage:
//
//	go run ./cmd/scalesweep -sides 8,16,32,64,128,256 -out BENCH_scale.json
//	go run ./cmd/scalesweep -sides 8,16,32,64 -topologies mesh,linear \
//	    -baseline BENCH_scale.json -gate analyze -gate kernel_build -out scale-ci.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/scale"
	"repro/internal/skew"
)

type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*l = append(*l, s)
		}
	}
	return nil
}

func parseSides(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad side %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		sides      = flag.String("sides", "8,16,32,64,128,256", "comma-separated array sides (cells per point = side²)")
		topologies = flag.String("topologies", "mesh,torus,linear,tree", "comma-separated topologies to sweep")
		engines    stringList
		gates      stringList
		maxCells   = flag.Int("max-cells", 1<<21, "skip sizes with more cells than this")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-(topology,size) deadline; expiry records timeout points and moves on")
		minTime    = flag.Duration("min-time", 50*time.Millisecond, "minimum measurement time per engine per size")
		maxIters   = flag.Int("iters", 1<<16, "max iterations per measurement")
		mcTrials   = flag.Int("mc-trials", 4, "Monte-Carlo trials per iteration")
		waves      = flag.Int("waves", 4, "hybrid/self-timed waves per iteration")
		seed       = flag.Int64("seed", 1, "RNG seed for seeded engines")
		maxPairs   = flag.Int64("max-kernel-pairs", 0, "kernel pair-count limit (0 = library default)")
		maxBytes   = flag.Int64("max-kernel-bytes", 0, "kernel resident-bytes limit (0 = library default)")
		out        = flag.String("out", "", "write the JSON report here ('-' or empty = stdout)")
		baseline   = flag.String("baseline", "", "committed report to compare fitted growth classes against")
		title      = flag.String("title", "", "override the report title")
		quiet      = flag.Bool("q", false, "suppress per-size progress lines")
	)
	flag.Var(&engines, "engines", "comma-separated engines to run (default: all; repeatable)")
	flag.Var(&gates, "gate", "engine whose fitted class must not exceed the baseline's (repeatable; with -baseline)")
	flag.Parse()

	sd, err := parseSides(*sides)
	if err != nil {
		fail("%v", err)
	}
	cfg := scale.Config{
		Sides:       sd,
		Topologies:  splitList(*topologies),
		Engines:     engines,
		MaxCells:    *maxCells,
		SizeTimeout: *timeout,
		MinTime:     *minTime,
		MaxIters:    *maxIters,
		MCTrials:    *mcTrials,
		Waves:       *waves,
		Seed:        *seed,
		Limits:      skew.Limits{MaxPairs: *maxPairs, MaxBytes: *maxBytes},
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	report, err := scale.Sweep(context.Background(), cfg)
	if err != nil {
		fail("%v", err)
	}
	report.Command = strings.Join(os.Args, " ")
	if *title != "" {
		report.Title = *title
	}
	if err := report.Validate(); err != nil {
		fail("internal error: generated report invalid: %v", err)
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := scale.WriteReport(w, report); err != nil {
		fail("write report: %v", err)
	}
	if *out != "" && *out != "-" {
		fmt.Fprintf(os.Stderr, "scalesweep: wrote %s (%d series)\n", *out, len(report.Series))
	}

	if *baseline != "" {
		if len(gates) == 0 {
			fail("-baseline requires at least one -gate engine")
		}
		bf, err := os.Open(*baseline)
		if err != nil {
			fail("%v", err)
		}
		base, err := scale.ReadReport(bf)
		bf.Close()
		if err != nil {
			fail("baseline %s: %v", *baseline, err)
		}
		violations := scale.CompareClasses(report, base, gates, scale.MetricNsPerOp)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "scalesweep: GROWTH REGRESSION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "scalesweep: growth classes within baseline for gated engines %v\n", []string(gates))
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalesweep: "+format+"\n", args...)
	os.Exit(1)
}
