// Command skewtab prints worst-case clock skew tables for a topology ×
// clocking scheme × skew model sweep — the quantities Sections IV and V
// of the paper reason about.
//
// Usage:
//
//	skewtab [-topology linear|ring|mesh|hex] [-scheme spine|htree|htree-eq|serpentine|ladder]
//	        [-model difference|summation|linear] [-sizes 8,16,32,64] [-m 1] [-eps 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	vlsisync "repro"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/report"
	"repro/internal/skew"
)

func main() {
	topology := flag.String("topology", "linear", "array topology: linear, ring, mesh, hex")
	scheme := flag.String("scheme", "spine", "clock scheme: spine, htree, htree-eq, serpentine, ladder")
	model := flag.String("model", "summation", "skew model: difference, summation, linear")
	sizesFlag := flag.String("sizes", "8,16,32,64", "comma-separated array sizes")
	m := flag.Float64("m", 1, "nominal wire delay per unit length")
	eps := flag.Float64("eps", 0.1, "wire delay variation per unit length")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fail(err)
	}
	mdl, err := buildModel(*model, *m, *eps)
	if err != nil {
		fail(err)
	}
	tbl := report.NewTable(
		fmt.Sprintf("worst-case skew: %s array, %s clock, %s model", *topology, *scheme, *model),
		"n", "cells", "max skew", "worst pair d", "worst pair s", "wire length")
	for _, n := range sizes {
		g, err := buildTopology(*topology, n)
		if err != nil {
			fail(err)
		}
		tree, err := buildScheme(*scheme, g)
		if err != nil {
			fail(err)
		}
		a, err := vlsisync.AnalyzeSkew(g, tree, mdl)
		if err != nil {
			fail(err)
		}
		tbl.AddRow(n, g.NumCells(), a.MaxSkew, a.WorstPair.D, a.WorstPair.S, tree.TotalWireLength())
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func buildTopology(name string, n int) (*comm.Graph, error) {
	switch name {
	case "linear":
		return comm.Linear(n)
	case "ring":
		return comm.Ring(n)
	case "mesh":
		return comm.Mesh(n, n)
	case "hex":
		return comm.Hex(n)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func buildScheme(name string, g *comm.Graph) (*clocktree.Tree, error) {
	switch name {
	case "spine":
		return clocktree.Spine(g)
	case "htree":
		return clocktree.HTree(g)
	case "htree-eq":
		tree, err := clocktree.HTree(g)
		if err != nil {
			return nil, err
		}
		tree.Equalize()
		return tree, nil
	case "serpentine":
		return clocktree.Serpentine(g)
	case "ladder":
		return clocktree.Ladder(g)
	}
	return nil, fmt.Errorf("unknown scheme %q", name)
}

func buildModel(name string, m, eps float64) (skew.Model, error) {
	switch name {
	case "difference":
		return skew.Difference{F: func(d float64) float64 { return m * d }}, nil
	case "summation":
		return skew.Summation{G: func(s float64) float64 { return eps * s }, Beta: eps}, nil
	case "linear":
		return skew.Linear{M: m, Eps: eps}, nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "skewtab:", err)
	os.Exit(1)
}
