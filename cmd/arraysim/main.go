// Command arraysim runs a systolic workload under a chosen
// synchronization discipline and verifies the outputs against the ideal
// lock-step semantics.
//
// Usage:
//
//	arraysim [-workload fir|poly|matmul] [-n 8] [-sync ideal|clocked|hybrid]
//	         [-period 5] [-skew 0.3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/array"
	"repro/internal/hybrid"
	"repro/internal/stats"
	"repro/internal/systolic"
)

func main() {
	workload := flag.String("workload", "fir", "workload: fir, poly, matmul, sort, jacobi, editdist")
	n := flag.Int("n", 8, "array size (taps / coefficients / matrix side)")
	sync := flag.String("sync", "clocked", "synchronization: ideal, clocked, hybrid")
	period := flag.Float64("period", 5, "clock period for -sync clocked")
	skewAmp := flag.Float64("skew", 0.3, "max random clock offset for -sync clocked")
	seed := flag.Int64("seed", 1, "random seed for data and offsets")
	flag.Parse()

	machine, cycles, verify, err := buildWorkload(*workload, *n, stats.NewRNG(*seed))
	if err != nil {
		fail(err)
	}
	ideal, err := machine.RunIdeal(cycles)
	if err != nil {
		fail(err)
	}

	var trace *array.Trace
	switch *sync {
	case "ideal":
		trace = ideal
	case "clocked":
		rng := stats.NewRNG(*seed + 100)
		off := array.Offsets{Cell: make([]float64, machine.NumCells())}
		for i := range off.Cell {
			off.Cell[i] = rng.Uniform(0, *skewAmp)
		}
		off.Host = rng.Uniform(0, *skewAmp)
		off.HostRead = rng.Uniform(0, *skewAmp)
		timing := array.Timing{Period: *period, CellDelay: 2, HoldDelay: 0.5}
		trace, err = machine.RunClocked(cycles, timing, off)
		if err != nil {
			fail(err)
		}
		fmt.Printf("clocked: period=%g  σ(comm)=%.3g  directed=%.3g\n",
			*period, machine.MaxCommSkew(off), machine.MaxDirectedSkew(off))
	case "hybrid":
		cfg := hybrid.Config{ElementSize: 4, Handshake: 0.5, LocalDistribution: 0.4,
			CellDelay: 2, HoldDelay: 0.5}
		sys, err := hybrid.New(machine.Graph(), cfg)
		if err != nil {
			fail(err)
		}
		trace, err = sys.Run(machine, cycles)
		if err != nil {
			fail(err)
		}
		fmt.Printf("hybrid: %d elements, cycle time %.3g (wave cost %.3g)\n",
			sys.NumElements(), sys.CycleTime(cycles), cfg.WaveCost())
	default:
		fail(fmt.Errorf("unknown sync %q", *sync))
	}

	if trace.Equal(ideal, 1e-9) {
		fmt.Println("trace matches ideal lock-step execution")
	} else {
		fmt.Println("TRACE DIVERGES from ideal lock-step execution (synchronization failure)")
	}
	if msg, err := verify(trace); err != nil {
		fail(err)
	} else {
		fmt.Println(msg)
	}
}

// buildWorkload constructs the machine, the run length, and a verifier
// that checks the trace against the workload's golden reference.
func buildWorkload(name string, n int, rng *stats.RNG) (*array.Machine, int, func(*array.Trace) (string, error), error) {
	switch name {
	case "fir":
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Uniform(-1, 1)
		}
		xs := make([]float64, 2*n)
		for i := range xs {
			xs[i] = rng.Uniform(-1, 1)
		}
		f, err := systolic.NewFIR(weights, xs)
		if err != nil {
			return nil, 0, nil, err
		}
		return f.Machine, f.Cycles, func(tr *array.Trace) (string, error) {
			if !tr.Equal(f.Golden(f.Cycles), 1e-9) {
				return "", fmt.Errorf("FIR outputs diverge from direct convolution")
			}
			return fmt.Sprintf("FIR: %d outputs match direct convolution", len(f.Outputs(tr))), nil
		}, nil
	case "poly":
		coeffs := make([]float64, n)
		for i := range coeffs {
			coeffs[i] = rng.Uniform(-1, 1)
		}
		points := make([]float64, n)
		for i := range points {
			points[i] = rng.Uniform(-1.5, 1.5)
		}
		p, err := systolic.NewPoly(coeffs, points)
		if err != nil {
			return nil, 0, nil, err
		}
		return p.Machine, p.Cycles, func(tr *array.Trace) (string, error) {
			got := p.Results(tr)
			for i, x := range p.Points {
				want := p.Eval(x)
				if diff := got[i] - want; diff > 1e-9 || diff < -1e-9 {
					return "", fmt.Errorf("poly(%g) = %g, want %g", x, got[i], want)
				}
			}
			return fmt.Sprintf("Horner: %d evaluations match direct evaluation", len(got)), nil
		}, nil
	case "matmul":
		a := systolic.NewMatrix(n, n)
		b := systolic.NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Uniform(-2, 2)
			b.Data[i] = rng.Uniform(-2, 2)
		}
		mm, err := systolic.NewMatMul(a, b)
		if err != nil {
			return nil, 0, nil, err
		}
		return mm.Machine, mm.Cycles, func(tr *array.Trace) (string, error) {
			got, err := mm.Extract(tr)
			if err != nil {
				return "", err
			}
			want, err := a.Mul(b)
			if err != nil {
				return "", err
			}
			if !got.Equal(want, 1e-6) {
				return "", fmt.Errorf("systolic product diverges from direct product")
			}
			return fmt.Sprintf("matmul: %dx%d product matches direct computation", n, n), nil
		}, nil
	case "sort":
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(rng.Intn(100))
		}
		s, err := systolic.NewSorter(keys)
		if err != nil {
			return nil, 0, nil, err
		}
		return s.Machine, s.Cycles, func(tr *array.Trace) (string, error) {
			got, err := s.Sorted(tr)
			if err != nil {
				return "", err
			}
			want := s.Golden()
			for i := range want {
				if got[i] != want[i] {
					return "", fmt.Errorf("sorted = %v, want %v", got, want)
				}
			}
			return fmt.Sprintf("sort: %d keys sorted correctly", n), nil
		}, nil
	case "jacobi":
		west := make([]float64, n)
		south := make([]float64, n)
		for i := range west {
			west[i] = rng.Uniform(0, 1)
			south[i] = rng.Uniform(0, 1)
		}
		j, err := systolic.NewJacobi(n, n, west, south)
		if err != nil {
			return nil, 0, nil, err
		}
		cycles := 4 * n
		return j.Machine, cycles, func(tr *array.Trace) (string, error) {
			if !tr.Equal(j.Golden(cycles), 1e-12) {
				return "", fmt.Errorf("relaxation diverges from direct iteration")
			}
			return fmt.Sprintf("jacobi: %d relaxation sweeps match direct iteration", cycles), nil
		}, nil
	case "editdist":
		alphabet := "abcde"
		a := make([]byte, n)
		b := make([]byte, n)
		for i := range a {
			a[i] = alphabet[rng.Intn(len(alphabet))]
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		e, err := systolic.NewEditDistance(string(a), string(b))
		if err != nil {
			return nil, 0, nil, err
		}
		return e.Machine, e.Cycles, func(tr *array.Trace) (string, error) {
			got, err := e.Distance(tr)
			if err != nil {
				return "", err
			}
			if want := e.Golden(); got != want {
				return "", fmt.Errorf("distance = %d, want %d", got, want)
			}
			return fmt.Sprintf("editdist(%q, %q) = %d, matches direct DP", a, b, got), nil
		}, nil
	}
	return nil, 0, nil, fmt.Errorf("unknown workload %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "arraysim:", err)
	os.Exit(1)
}
