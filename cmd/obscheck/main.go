// Command obscheck validates observability artifacts so CI can gate on
// them without external tooling.
//
// Usage:
//
//	obscheck -trace out.json [-min-events 1] [-min-categories 1]
//	obscheck -prom [-min-exemplars 0] < exposition.txt
//	obscheck -manifest run.json
//	obscheck -scale BENCH_scale.json [-min-sizes 5]
//	obscheck -merge n0.json,n1.json,n2.json [-o merged.json] [-min-cross 1]
//
// -trace parses a Chrome trace_event file (the -trace output of
// cmd/experiments and cmd/planner), requires at least -min-events
// complete ("X") span events and -min-categories distinct engine
// categories, and prints a one-line summary. -prom parses a Prometheus
// text exposition (syncd's GET /metrics?format=prom) from stdin under
// the strict 0.0.4 grammar, optionally requiring families named by
// repeated -require flags; -min-exemplars additionally requires that
// many samples carrying OpenMetrics exemplars (the trace-ID-bearing
// histogram buckets). -manifest checks a run manifest for the
// provenance fields the trajectory depends on. -scale round-trips a
// scalesweep report through the strict scale.ReadReport validator and
// requires every series to hold at least -min-sizes ok measurements.
// -merge stitches per-node Chrome trace files (comma-separated, node
// names taken from the file base names) into one cluster-wide timeline
// keyed by trace ID, estimating per-node clock offsets from
// parent/child span containment; it requires at least -min-cross
// cross-node parented spans and writes the merged trace to -o when
// given. Exit status is non-zero on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/scale"
)

type requireList []string

func (r *requireList) String() string { return strings.Join(*r, ",") }

func (r *requireList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	tracePath := flag.String("trace", "", "validate a Chrome trace_event JSON file")
	minEvents := flag.Int("min-events", 1, "minimum complete (X) events the trace must hold")
	minCategories := flag.Int("min-categories", 1, "minimum distinct span categories the trace must hold")
	promIn := flag.Bool("prom", false, "validate a Prometheus text exposition read from stdin")
	manifestPath := flag.String("manifest", "", "validate a run manifest JSON file")
	scalePath := flag.String("scale", "", "validate a scalesweep report JSON file")
	minSizes := flag.Int("min-sizes", 1, "minimum ok-measured sizes every series must hold (with -scale)")
	mergePaths := flag.String("merge", "", "comma-separated per-node trace files to merge into one timeline")
	mergeOut := flag.String("o", "", "write the merged trace here (with -merge)")
	minCross := flag.Int("min-cross", 1, "minimum cross-node parented spans the merged trace must hold (with -merge)")
	minExemplars := flag.Int("min-exemplars", 0, "minimum samples carrying exemplars (with -prom)")
	var require requireList
	flag.Var(&require, "require", "metric family that must be present (repeatable; with -prom)")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*tracePath != "", *promIn, *manifestPath != "", *scalePath != "", *mergePaths != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fail(fmt.Errorf("pick exactly one of -trace, -prom, -manifest, -scale, -merge"))
	}

	switch {
	case *tracePath != "":
		checkTrace(*tracePath, *minEvents, *minCategories)
	case *promIn:
		checkProm(require, *minExemplars)
	case *manifestPath != "":
		checkManifest(*manifestPath)
	case *scalePath != "":
		checkScale(*scalePath, *minSizes)
	case *mergePaths != "":
		checkMerge(strings.Split(*mergePaths, ","), *mergeOut, *minCross)
	}
}

func checkTrace(path string, minEvents, minCategories int) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	doc, err := obs.ReadTrace(f)
	if err != nil {
		fail(err)
	}
	complete := doc.CompleteEvents()
	cats := doc.Categories()
	if len(complete) < minEvents {
		fail(fmt.Errorf("trace %s: %d complete events, need ≥ %d", path, len(complete), minEvents))
	}
	if len(cats) < minCategories {
		fail(fmt.Errorf("trace %s: %d categories %v, need ≥ %d", path, len(cats), cats, minCategories))
	}
	fmt.Printf("trace ok: %d events, %d complete spans, categories %s\n",
		len(doc.TraceEvents), len(complete), strings.Join(cats, ","))
}

func checkProm(require []string, minExemplars int) {
	fams, err := obs.ParseProm(os.Stdin)
	if err != nil {
		fail(err)
	}
	samples, exemplars := 0, 0
	for _, f := range fams {
		samples += len(f.Samples)
		for _, s := range f.Samples {
			if s.Exemplar != nil {
				exemplars++
			}
		}
	}
	if samples == 0 {
		fail(fmt.Errorf("exposition holds no samples"))
	}
	for _, name := range require {
		if _, ok := obs.FindProm(fams, name); !ok {
			fail(fmt.Errorf("required family %s missing from exposition", name))
		}
	}
	if exemplars < minExemplars {
		fail(fmt.Errorf("exposition holds %d exemplar-bearing samples, need ≥ %d", exemplars, minExemplars))
	}
	fmt.Printf("prom ok: %d families, %d samples, %d exemplars\n", len(fams), samples, exemplars)
}

// checkMerge stitches per-node traces into one document and gates on
// the cross-node seam count — the proof that trace propagation actually
// crossed the wire during the run.
func checkMerge(paths []string, out string, minCross int) {
	var nodes []obs.NamedTrace
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			fail(err)
		}
		doc, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("trace %s: %w", p, err))
		}
		nodes = append(nodes, obs.NamedTrace{Name: strings.TrimSuffix(filepath.Base(p), ".json"), Doc: doc})
	}
	merged, stats, err := obs.MergeTraces(nodes)
	if err != nil {
		fail(err)
	}
	if stats.CrossNodeSpans < minCross {
		fail(fmt.Errorf("merged trace has %d cross-node parented spans, need ≥ %d", stats.CrossNodeSpans, minCross))
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(merged); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	offsets := make([]string, 0, len(stats.OffsetsUS))
	for _, n := range nodes {
		if us, ok := stats.OffsetsUS[n.Name]; ok {
			offsets = append(offsets, fmt.Sprintf("%s%+.0fus", n.Name, us))
		}
	}
	fmt.Printf("merge ok: %d nodes, %d spans, %d traces, %d cross-node spans, offsets %s\n",
		stats.Nodes, stats.Spans, stats.Traces, stats.CrossNodeSpans, strings.Join(offsets, ","))
}

func checkManifest(path string) {
	b, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		fail(fmt.Errorf("manifest %s is not valid JSON: %w", path, err))
	}
	if m.Command == "" {
		fail(fmt.Errorf("manifest %s: command missing", path))
	}
	if m.GoVersion == "" {
		fail(fmt.Errorf("manifest %s: go_version missing", path))
	}
	if m.WallSeconds <= 0 {
		fail(fmt.Errorf("manifest %s: wall_s = %g, want > 0", path, m.WallSeconds))
	}
	fmt.Printf("manifest ok: %s on go %s, %d experiments, wall %.2fs\n",
		m.Command, m.GoVersion, len(m.Experiments), m.WallSeconds)
}

func checkScale(path string, minSizes int) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	r, err := scale.ReadReport(f)
	if err != nil {
		fail(err)
	}
	points, fits := 0, 0
	for i := range r.Series {
		s := &r.Series[i]
		points += len(s.Points)
		fits += len(s.Fits)
		if ok := s.OKSizes(); ok < minSizes {
			fail(fmt.Errorf("scale report %s: series %s/%s has %d ok sizes, need ≥ %d",
				path, s.Engine, s.Topology, ok, minSizes))
		}
	}
	fmt.Printf("scale ok: %d series, %d points, %d fits (%s/%s, max cells %d)\n",
		len(r.Series), points, fits, r.GOOS, r.GOARCH, r.MaxCells)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "obscheck:", err)
	os.Exit(1)
}
