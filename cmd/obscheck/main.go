// Command obscheck validates observability artifacts so CI can gate on
// them without external tooling.
//
// Usage:
//
//	obscheck -trace out.json [-min-events 1] [-min-categories 1]
//	obscheck -prom < exposition.txt
//	obscheck -manifest run.json
//	obscheck -scale BENCH_scale.json [-min-sizes 5]
//
// -trace parses a Chrome trace_event file (the -trace output of
// cmd/experiments and cmd/planner), requires at least -min-events
// complete ("X") span events and -min-categories distinct engine
// categories, and prints a one-line summary. -prom parses a Prometheus
// text exposition (syncd's GET /metrics?format=prom) from stdin under
// the strict 0.0.4 grammar, optionally requiring families named by
// repeated -require flags. -manifest checks a run manifest for the
// provenance fields the trajectory depends on. -scale round-trips a
// scalesweep report through the strict scale.ReadReport validator and
// requires every series to hold at least -min-sizes ok measurements.
// Exit status is non-zero on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/scale"
)

type requireList []string

func (r *requireList) String() string { return strings.Join(*r, ",") }

func (r *requireList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	tracePath := flag.String("trace", "", "validate a Chrome trace_event JSON file")
	minEvents := flag.Int("min-events", 1, "minimum complete (X) events the trace must hold")
	minCategories := flag.Int("min-categories", 1, "minimum distinct span categories the trace must hold")
	promIn := flag.Bool("prom", false, "validate a Prometheus text exposition read from stdin")
	manifestPath := flag.String("manifest", "", "validate a run manifest JSON file")
	scalePath := flag.String("scale", "", "validate a scalesweep report JSON file")
	minSizes := flag.Int("min-sizes", 1, "minimum ok-measured sizes every series must hold (with -scale)")
	var require requireList
	flag.Var(&require, "require", "metric family that must be present (repeatable; with -prom)")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*tracePath != "", *promIn, *manifestPath != "", *scalePath != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fail(fmt.Errorf("pick exactly one of -trace, -prom, -manifest, -scale"))
	}

	switch {
	case *tracePath != "":
		checkTrace(*tracePath, *minEvents, *minCategories)
	case *promIn:
		checkProm(require)
	case *manifestPath != "":
		checkManifest(*manifestPath)
	case *scalePath != "":
		checkScale(*scalePath, *minSizes)
	}
}

func checkTrace(path string, minEvents, minCategories int) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	doc, err := obs.ReadTrace(f)
	if err != nil {
		fail(err)
	}
	complete := doc.CompleteEvents()
	cats := doc.Categories()
	if len(complete) < minEvents {
		fail(fmt.Errorf("trace %s: %d complete events, need ≥ %d", path, len(complete), minEvents))
	}
	if len(cats) < minCategories {
		fail(fmt.Errorf("trace %s: %d categories %v, need ≥ %d", path, len(cats), cats, minCategories))
	}
	fmt.Printf("trace ok: %d events, %d complete spans, categories %s\n",
		len(doc.TraceEvents), len(complete), strings.Join(cats, ","))
}

func checkProm(require []string) {
	fams, err := obs.ParseProm(os.Stdin)
	if err != nil {
		fail(err)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	if samples == 0 {
		fail(fmt.Errorf("exposition holds no samples"))
	}
	for _, name := range require {
		if _, ok := obs.FindProm(fams, name); !ok {
			fail(fmt.Errorf("required family %s missing from exposition", name))
		}
	}
	fmt.Printf("prom ok: %d families, %d samples\n", len(fams), samples)
}

func checkManifest(path string) {
	b, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		fail(fmt.Errorf("manifest %s is not valid JSON: %w", path, err))
	}
	if m.Command == "" {
		fail(fmt.Errorf("manifest %s: command missing", path))
	}
	if m.GoVersion == "" {
		fail(fmt.Errorf("manifest %s: go_version missing", path))
	}
	if m.WallSeconds <= 0 {
		fail(fmt.Errorf("manifest %s: wall_s = %g, want > 0", path, m.WallSeconds))
	}
	fmt.Printf("manifest ok: %s on go %s, %d experiments, wall %.2fs\n",
		m.Command, m.GoVersion, len(m.Experiments), m.WallSeconds)
}

func checkScale(path string, minSizes int) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	r, err := scale.ReadReport(f)
	if err != nil {
		fail(err)
	}
	points, fits := 0, 0
	for i := range r.Series {
		s := &r.Series[i]
		points += len(s.Points)
		fits += len(s.Fits)
		if ok := s.OKSizes(); ok < minSizes {
			fail(fmt.Errorf("scale report %s: series %s/%s has %d ok sizes, need ≥ %d",
				path, s.Engine, s.Topology, ok, minSizes))
		}
	}
	fmt.Printf("scale ok: %d series, %d points, %d fits (%s/%s, max cells %d)\n",
		len(r.Series), points, fits, r.GOOS, r.GOARCH, r.MaxCells)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "obscheck:", err)
	os.Exit(1)
}
