// Command syncd serves the planning, analysis, and simulation engines
// over HTTP with content-addressed result caching, request coalescing,
// and graceful drain — standalone or as one node of a peer cluster.
//
// Usage:
//
//	syncd [-addr 127.0.0.1:8080] [-cache 1024] [-kernel-cache 256]
//	      [-max-kernel-pairs 0] [-max-kernel-bytes 0] [-max-batch-configs 64]
//	      [-no-streamed-fallback] [-stream-shard-size 0] [-stream-peer-shards]
//	      [-workers 0] [-deadline 30s] [-max-deadline 2m] [-quiet] [-pprof]
//	      [-peers http://h2:8080,http://h3:8080] [-self http://h1:8080]
//	      [-replicas 128] [-hedge-after 0] [-health-interval 1s]
//	      [-jobs] [-max-jobs 64] [-debug-delay 0]
//	      [-trace out.json] [-manifest run.json]
//	      [-flight-spans 512] [-flight-slow 250ms] [-no-flight]
//
// Endpoints:
//
//	POST /v1/plan        run the synchronization planner
//	POST /v1/analyze     evaluate skew models over candidate clock trees
//	POST /v1/simulate    clock-propagation or hybrid-handshake simulation;
//	                     posting configs runs a batched sweep of N configs
//	                     over one topology with a shared simulation kernel
//	GET  /v1/layout.svg  render a topology (optionally with its clock tree)
//	POST /v1/jobs        start an async analysis or simulation job
//	GET  /v1/jobs/{id}   poll a job; DELETE cancels it
//	GET  /v1/jobs/{id}/stream  follow a job's progress and partial results
//	                     as NDJSON (SSE with Accept: text/event-stream)
//	GET  /healthz        liveness
//	GET  /metrics        counters, cache stats, latency quantiles
//	                     (expvar JSON; ?format=prom for Prometheus text)
//	GET  /debug/flightrecorder  the always-on flight recorder: recent
//	                     request span trees plus slow/error captures
//	                     (?trace_id= and ?attr=k=v filter)
//
// Observability: every request is traced. The flight recorder keeps the
// last -flight-spans completed spans in a ring and captures the full
// span tree of any request slower than -flight-slow or ending in error,
// with no export configured — -no-flight turns it off. -trace retains
// every span and writes one Chrome trace_event file on shutdown; in a
// cluster the per-node files merge into a single cross-node timeline
// with `obscheck -merge`. -manifest writes a provenance manifest on
// shutdown with the span summary and the flight recorder's final
// snapshot folded in.
//
// Cluster mode: -peers joins this node to a static peer group. The
// members place each other on a consistent-hash ring over request
// content addresses; any node accepts any request and forwards the ones
// a peer owns, hedging the forward after -hedge-after (0 derives the
// delay from observed peer latency percentiles; a negative value
// disables hedging). Two extra endpoints appear:
//
//	GET  /v1/cluster/info   membership, health, and hedge state
//	POST /v1/cluster/fill   accept a pushed cache entry from a peer
//	POST /v1/cluster/shard  compute one streamed-analysis pair shard on
//	                        behalf of a peer (used with -stream-peer-shards)
//
// Without -peers the daemon behaves exactly as a standalone server.
//
// Size ceiling: a kernel whose pair count or byte estimate exceeds
// -max-kernel-pairs / -max-kernel-bytes is never built. By default the
// analysis falls back to the streamed path — exact max skew and worst
// pair in bounded memory, sketch quantiles, sampled Monte Carlo — and
// the response carries "streamed": true. -no-streamed-fallback restores
// the bare 413 array_too_large answer. -stream-shard-size tunes the
// streamed path's pair-block granularity; -stream-peer-shards lets a
// clustered node spill shards to their ring owners.
//
// With -pprof the net/http/pprof profiling endpoints are additionally
// served under /debug/pprof/ (default off: profiling handlers expose
// internals and should be opted into, not ambient).
//
// -debug-delay sleeps that long before serving every request. It exists
// to stand in for a degraded node in hedging experiments (the committed
// BENCH_cluster.json slow-peer scenario) and has no production use.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, lets
// in-flight requests finish (bounded by -drain-timeout), and exits 0. A
// clustered node also pushes its warm result-cache entries to their
// ring owners before exiting, so the survivors keep the cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/skew"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	cache := flag.Int("cache", 1024, "result cache entries")
	kernelCache := flag.Int("kernel-cache", 256, "skew-kernel cache entries (precomputed graph+tree geometry)")
	maxKernelPairs := flag.Int64("max-kernel-pairs", 0, "largest communicating-pair count a request may ask a kernel for (0 = skew.DefaultLimits; oversize requests get 413 array_too_large)")
	maxKernelBytes := flag.Int64("max-kernel-bytes", 0, "kernel memory budget in bytes per request (0 = skew.DefaultLimits; oversize requests get 413 array_too_large)")
	maxBatchConfigs := flag.Int("max-batch-configs", 64, "largest configs array a batched /v1/simulate request may carry")
	noStreamedFallback := flag.Bool("no-streamed-fallback", false, "answer oversize analyze requests with 413 instead of the bounded-memory streamed path")
	streamShardSize := flag.Int64("stream-shard-size", 0, "streamed-analysis pair-shard size (0 = skew.DefaultShardSize)")
	streamPeerShards := flag.Bool("stream-peer-shards", false, "in cluster mode, spill streamed-analysis shards to their ring-owning peers")
	workers := flag.Int("workers", 0, "engine fan-out workers per request (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	quiet := flag.Bool("quiet", false, "suppress per-request log lines")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof endpoints under /debug/pprof/")

	peers := flag.String("peers", "", "comma-separated peer base URLs; empty runs standalone")
	self := flag.String("self", "", "this node's base URL as peers reach it (default http://<addr> once the listener is bound)")
	replicas := flag.Int("replicas", 0, "consistent-hash virtual nodes per member (0 = default)")
	hedgeAfter := flag.Duration("hedge-after", 0, "forwarded-request hedge delay: 0 adapts to observed peer latency, < 0 disables hedging")
	healthInterval := flag.Duration("health-interval", time.Second, "peer health probe period")
	withJobs := flag.Bool("jobs", true, "serve the async /v1/jobs API")
	maxJobs := flag.Int("max-jobs", 64, "most jobs tracked at once (excess creates get 429)")
	debugDelay := flag.Duration("debug-delay", 0, "sleep this long before serving each request (degraded-node stand-in for hedging experiments)")

	tracePath := flag.String("trace", "", "write a Chrome trace_event file of every span on shutdown (enables span retention)")
	manifestPath := flag.String("manifest", "", "write a run manifest JSON (span summary + flight recorder snapshot) on shutdown")
	flightSpans := flag.Int("flight-spans", 0, "flight recorder span-ring capacity (0 = default)")
	flightSlow := flag.Duration("flight-slow", 0, "request latency above which the flight recorder captures the span tree (0 = default)")
	noFlight := flag.Bool("no-flight", false, "disable the always-on flight recorder")
	flag.Parse()

	start := time.Now()
	cfg := service.Config{
		CacheEntries:       *cache,
		KernelCacheEntries: *kernelCache,
		KernelLimits:       skew.Limits{MaxPairs: *maxKernelPairs, MaxBytes: *maxKernelBytes},
		MaxBatchConfigs:    *maxBatchConfigs,
		NoStreamedFallback: *noStreamedFallback,
		StreamShardSize:    *streamShardSize,
		StreamPeerShards:   *streamPeerShards,
		Workers:            *workers,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		DisableJobs:        !*withJobs,
		Jobs:               jobs.Config{MaxJobs: *maxJobs},
		FlightSpans:        *flightSpans,
		FlightSlow:         *flightSlow,
		DisableFlight:      *noFlight,
	}
	if !*quiet {
		cfg.LogWriter = os.Stderr
	}
	// -trace asks for a full span export, so the tracer must retain
	// spans; without it the server's internal tracer keeps nothing and
	// serves only the flight recorder.
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncd:", err)
		os.Exit(1)
	}

	var s *service.Server
	if *peers != "" {
		selfURL := *self
		if selfURL == "" {
			selfURL = "http://" + ln.Addr().String()
		}
		cfg.Cluster = &service.ClusterConfig{
			Self:           selfURL,
			Peers:          splitPeers(*peers),
			Replicas:       *replicas,
			HealthInterval: *healthInterval,
			HedgePolicy:    hedgePolicy(*hedgeAfter),
		}
		s, err = service.NewClusterServer(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "syncd:", err)
			os.Exit(1)
		}
	} else {
		s = service.NewServer(cfg)
	}
	defer s.Close()

	var handler http.Handler = s
	if *debugDelay > 0 {
		inner := handler
		d := *debugDelay
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Peer probes stay fast so a deliberately slow node is still
			// seen as alive — slow is exactly what the hedge is for.
			if r.URL.Path != "/healthz" {
				time.Sleep(d)
			}
			inner.ServeHTTP(w, r)
		})
	}
	if *withPprof {
		// Explicit registrations on a private mux: importing net/http/pprof
		// for its side effect would pollute http.DefaultServeMux and serve
		// the profiles even without the flag.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}

	// The announcement goes to stdout so scripts (CI smoke, syncload
	// wrappers) can scrape the actual port when -addr ends in :0.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "syncd: received %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "syncd: drain:", err)
			os.Exit(1)
		}
		<-serveErr // Serve has returned ErrServerClosed by now
		if *peers != "" {
			if n := s.DrainToPeers(ctx); n > 0 {
				fmt.Fprintf(os.Stderr, "syncd: migrated %d cache entries to peers\n", n)
			}
		}
		writeShutdownArtifacts(s, tracer, *tracePath, *manifestPath, start)
		fmt.Fprintln(os.Stderr, "syncd: drained cleanly")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "syncd:", err)
		os.Exit(1)
	}
}

// writeShutdownArtifacts exports the run's observability artifacts
// after a clean drain: the full Chrome trace (with -trace) and the run
// manifest folding in the flight recorder's final snapshot (with
// -manifest). Export failures are reported but never change the exit
// status — losing a trace must not turn a clean drain into a crash.
func writeShutdownArtifacts(s *service.Server, tracer *obs.Tracer, tracePath, manifestPath string, start time.Time) {
	if tracePath != "" && tracer != nil {
		f, err := os.Create(tracePath)
		if err == nil {
			err = tracer.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "syncd: writing trace:", err)
		} else {
			fmt.Fprintf(os.Stderr, "syncd: wrote trace %s (%d spans)\n", tracePath, tracer.Len())
		}
	}
	if manifestPath != "" {
		m := obs.NewManifest(start)
		m.VisitFlags(func(record func(name, value string)) {
			flag.CommandLine.Visit(func(f *flag.Flag) { record(f.Name, f.Value.String()) })
		})
		m.Finish(tracer)
		if fr := s.FlightRecorder(); fr != nil {
			snap := fr.Snapshot("", "")
			m.Flight = &snap
		}
		if err := m.WriteFile(manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "syncd: writing manifest:", err)
		} else {
			fmt.Fprintf(os.Stderr, "syncd: wrote manifest %s\n", manifestPath)
		}
	}
}

// splitPeers parses the -peers list, dropping empty entries so trailing
// commas are harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// hedgePolicy maps the -hedge-after flag: negative disables, zero
// adapts to the observed peer latency distribution, positive is fixed.
func hedgePolicy(d time.Duration) cluster.HedgePolicy {
	switch {
	case d < 0:
		return cluster.HedgePolicy{}
	case d == 0:
		return cluster.HedgePolicy{Adaptive: true, Percentile: 95, Max: 2 * time.Second}
	default:
		return cluster.HedgePolicy{HedgeAfter: d}
	}
}
