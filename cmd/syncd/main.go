// Command syncd serves the planning, analysis, and simulation engines
// over HTTP with content-addressed result caching, request coalescing,
// and graceful drain.
//
// Usage:
//
//	syncd [-addr 127.0.0.1:8080] [-cache 1024] [-kernel-cache 256]
//	      [-max-kernel-pairs 0] [-max-kernel-bytes 0] [-max-batch-configs 64]
//	      [-workers 0] [-deadline 30s] [-max-deadline 2m] [-quiet] [-pprof]
//
// Endpoints:
//
//	POST /v1/plan        run the synchronization planner
//	POST /v1/analyze     evaluate skew models over candidate clock trees
//	POST /v1/simulate    clock-propagation or hybrid-handshake simulation;
//	                     posting configs runs a batched sweep of N configs
//	                     over one topology with a shared simulation kernel
//	GET  /v1/layout.svg  render a topology (optionally with its clock tree)
//	GET  /healthz        liveness
//	GET  /metrics        counters, cache stats, latency quantiles
//	                     (expvar JSON; ?format=prom for Prometheus text)
//
// With -pprof the net/http/pprof profiling endpoints are additionally
// served under /debug/pprof/ (default off: profiling handlers expose
// internals and should be opted into, not ambient).
//
// On SIGINT/SIGTERM the daemon stops accepting connections, lets
// in-flight requests finish (bounded by -drain-timeout), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/skew"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	cache := flag.Int("cache", 1024, "result cache entries")
	kernelCache := flag.Int("kernel-cache", 256, "skew-kernel cache entries (precomputed graph+tree geometry)")
	maxKernelPairs := flag.Int64("max-kernel-pairs", 0, "largest communicating-pair count a request may ask a kernel for (0 = skew.DefaultLimits; oversize requests get 413 array_too_large)")
	maxKernelBytes := flag.Int64("max-kernel-bytes", 0, "kernel memory budget in bytes per request (0 = skew.DefaultLimits; oversize requests get 413 array_too_large)")
	maxBatchConfigs := flag.Int("max-batch-configs", 64, "largest configs array a batched /v1/simulate request may carry")
	workers := flag.Int("workers", 0, "engine fan-out workers per request (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	quiet := flag.Bool("quiet", false, "suppress per-request log lines")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof endpoints under /debug/pprof/")
	flag.Parse()

	cfg := service.Config{
		CacheEntries:       *cache,
		KernelCacheEntries: *kernelCache,
		KernelLimits:       skew.Limits{MaxPairs: *maxKernelPairs, MaxBytes: *maxKernelBytes},
		MaxBatchConfigs:    *maxBatchConfigs,
		Workers:            *workers,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
	}
	if !*quiet {
		cfg.LogWriter = os.Stderr
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncd:", err)
		os.Exit(1)
	}
	var handler http.Handler = service.NewServer(cfg)
	if *withPprof {
		// Explicit registrations on a private mux: importing net/http/pprof
		// for its side effect would pollute http.DefaultServeMux and serve
		// the profiles even without the flag.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}

	// The announcement goes to stdout so scripts (CI smoke, syncload
	// wrappers) can scrape the actual port when -addr ends in :0.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "syncd: received %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "syncd: drain:", err)
			os.Exit(1)
		}
		<-serveErr // Serve has returned ErrServerClosed by now
		fmt.Fprintln(os.Stderr, "syncd: drained cleanly")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "syncd:", err)
		os.Exit(1)
	}
}
