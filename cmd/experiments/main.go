// Command experiments regenerates the paper-reproduction experiment
// suite (DESIGN.md §4) and prints each experiment's table, claim, and
// measured finding.
//
// Experiments run concurrently on a bounded worker pool (-parallel, one
// worker per CPU by default). Every generator is seeded per task, so
// the tables are byte-identical at any parallelism — only wall time
// changes; a per-experiment timing summary goes to stderr (-metrics).
// A failing experiment costs only its own slot: everything that
// completed is still printed before the command exits non-zero.
//
// Observability rides on the side and never touches the tables: -trace
// writes the run's span tree as Chrome trace_event JSON (load it in
// chrome://tracing or Perfetto), and -manifest writes a per-run
// provenance record (flags, git describe, per-experiment wall time,
// span summary).
//
// Usage:
//
//	experiments [-quick] [-format text|markdown|csv] [-run E4]
//	            [-parallel N] [-timeout 5m] [-metrics=false]
//	            [-trace out.json] [-manifest run.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	vlsisync "repro"
	"repro/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced sweeps (faster, same shapes)")
	format := flag.String("format", "text", "output format: text, markdown, or csv")
	run := flag.String("run", "", "run a single experiment by ID (e.g. E4); default all")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "write output to a file instead of stdout")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max concurrent experiments and inner sweep fan-out (1 = sequential; output is identical either way)")
	timeout := flag.Duration("timeout", 0,
		"overall deadline for the run, e.g. 5m (0 = none); unfinished experiments are reported as errors")
	metrics := flag.Bool("metrics", true, "print per-experiment wall-time metrics to stderr")
	tracePath := flag.String("trace", "", "write the run's spans as Chrome trace_event JSON to this file")
	manifestPath := flag.String("manifest", "", "write a per-run provenance manifest (JSON) to this file")
	flag.Parse()

	start := time.Now()
	var tracer *obs.Tracer
	if *tracePath != "" || *manifestPath != "" {
		tracer = obs.NewTracer()
	}

	if *list {
		for _, id := range vlsisync.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	dest := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		dest = f
	}

	var results []*vlsisync.ExperimentResult
	var ms []vlsisync.RunMetric
	var runErr error
	if *run != "" {
		ctx := obs.WithTracer(context.Background(), tracer)
		t0 := time.Now()
		r, err := vlsisync.RunExperimentCtx(ctx, *run, *quick)
		if err != nil {
			fail(err)
		}
		ms = append(ms, vlsisync.RunMetric{ID: r.ID, Wall: time.Since(t0), Rows: r.Table.NumRows(), Pass: r.Pass})
		results = append(results, r)
	} else {
		results, ms, runErr = vlsisync.RunExperiments(context.Background(), vlsisync.RunOptions{
			Quick:    *quick,
			Parallel: *parallel,
			Timeout:  *timeout,
			Tracer:   tracer,
		})
		// Metrics carry measured wall times, so they go to stderr: the
		// deterministic experiment tables on stdout (or -out) stay
		// byte-identical across runs and parallelism settings.
		if *metrics {
			if err := vlsisync.MetricsTable(ms).Render(os.Stderr); err != nil {
				fail(err)
			}
		}
	}
	writeObservability(tracer, *tracePath, *manifestPath, start, ms)

	failures := 0
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failures++
		}
		switch *format {
		case "markdown":
			fmt.Fprintf(dest, "### %s — %s [%s]\n\n", r.ID, r.Title, status)
			fmt.Fprintf(dest, "*Paper claim:* %s\n\n*Measured:* %s\n\n", r.PaperClaim, r.Finding)
			if err := r.Table.RenderMarkdown(dest); err != nil {
				fail(err)
			}
			fmt.Fprintln(dest)
		case "csv":
			if err := r.Table.RenderCSV(dest); err != nil {
				fail(err)
			}
			fmt.Fprintln(dest)
		case "text":
			fmt.Fprintf(dest, "=== %s — %s [%s]\n", r.ID, r.Title, status)
			fmt.Fprintf(dest, "Paper claim: %s\n", r.PaperClaim)
			fmt.Fprintf(dest, "Measured:    %s\n\n", r.Finding)
			if err := r.Table.Render(dest); err != nil {
				fail(err)
			}
			fmt.Fprintln(dest)
		default:
			fail(fmt.Errorf("unknown format %q", *format))
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d completed; failures:\n%v\n",
			len(results), len(vlsisync.ExperimentIDs()), runErr)
		os.Exit(1)
	}
	if failures > 0 {
		fail(fmt.Errorf("%d experiment(s) failed", failures))
	}
}

// writeObservability emits the side-channel artifacts: the trace_event
// file and the run manifest. Failures are fatal — a requested artifact
// that cannot be written should not pass silently.
func writeObservability(tracer *obs.Tracer, tracePath, manifestPath string, start time.Time, ms []vlsisync.RunMetric) {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteTrace(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if manifestPath == "" {
		return
	}
	man := obs.NewManifest(start)
	man.VisitFlags(func(record func(name, value string)) {
		flag.CommandLine.Visit(func(fl *flag.Flag) { record(fl.Name, fl.Value.String()) })
	})
	for _, m := range ms {
		et := obs.ExperimentTiming{ID: m.ID, WallSeconds: m.Wall.Seconds(), Rows: m.Rows, Pass: m.Pass}
		if m.Err != nil {
			et.Error = m.Err.Error()
		}
		man.Experiments = append(man.Experiments, et)
	}
	man.Finish(tracer)
	if err := man.WriteFile(manifestPath); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
