// Command experiments regenerates the paper-reproduction experiment
// suite (DESIGN.md §4) and prints each experiment's table, claim, and
// measured finding.
//
// Usage:
//
//	experiments [-quick] [-format text|markdown|csv] [-run E4]
package main

import (
	"flag"
	"fmt"
	"os"

	vlsisync "repro"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced sweeps (faster, same shapes)")
	format := flag.String("format", "text", "output format: text, markdown, or csv")
	run := flag.String("run", "", "run a single experiment by ID (e.g. E4); default all")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "write output to a file instead of stdout")
	flag.Parse()

	if *list {
		for _, id := range vlsisync.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	dest := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		dest = f
	}

	var results []*vlsisync.ExperimentResult
	if *run != "" {
		r, err := vlsisync.RunExperiment(*run, *quick)
		if err != nil {
			fail(err)
		}
		results = append(results, r)
	} else {
		var err error
		results, err = vlsisync.RunAllExperiments(*quick)
		if err != nil {
			fail(err)
		}
	}

	failures := 0
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failures++
		}
		switch *format {
		case "markdown":
			fmt.Fprintf(dest, "### %s — %s [%s]\n\n", r.ID, r.Title, status)
			fmt.Fprintf(dest, "*Paper claim:* %s\n\n*Measured:* %s\n\n", r.PaperClaim, r.Finding)
			if err := r.Table.RenderMarkdown(dest); err != nil {
				fail(err)
			}
			fmt.Fprintln(dest)
		case "csv":
			if err := r.Table.RenderCSV(dest); err != nil {
				fail(err)
			}
			fmt.Fprintln(dest)
		case "text":
			fmt.Fprintf(dest, "=== %s — %s [%s]\n", r.ID, r.Title, status)
			fmt.Fprintf(dest, "Paper claim: %s\n", r.PaperClaim)
			fmt.Fprintf(dest, "Measured:    %s\n\n", r.Finding)
			if err := r.Table.Render(dest); err != nil {
				fail(err)
			}
			fmt.Fprintln(dest)
		default:
			fail(fmt.Errorf("unknown format %q", *format))
		}
	}
	if failures > 0 {
		fail(fmt.Errorf("%d experiment(s) failed", failures))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
