// Command layoutviz renders the paper's figures from live data
// structures: topologies with their clock trees (Figs. 3–6) and the
// hybrid element partition (Fig. 8), as standalone SVG files.
//
// Usage:
//
//	layoutviz -out figures/            # render the whole figure set
//	layoutviz -figure fig4 -out .      # render one figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/hybrid"
	"repro/internal/viz"
)

type figure struct {
	name, caption string
	render        func(w *os.File) error
}

func figures() []figure {
	return []figure{
		{"fig3a", "Fig. 3(a): H-tree clocking a linear array", func(w *os.File) error {
			g, err := comm.Linear(16)
			if err != nil {
				return err
			}
			t, err := clocktree.HTree(g)
			if err != nil {
				return err
			}
			return viz.RenderGraphWithClock(w, g, t, "Fig. 3(a): H-tree clocking a linear array")
		}},
		{"fig3b", "Fig. 3(b): H-tree clocking a square array", func(w *os.File) error {
			g, err := comm.Mesh(8, 8)
			if err != nil {
				return err
			}
			t, err := clocktree.HTree(g)
			if err != nil {
				return err
			}
			return viz.RenderGraphWithClock(w, g, t, "Fig. 3(b): H-tree clocking a square array")
		}},
		{"fig3c", "Fig. 3(c): H-tree clocking a hexagonal array", func(w *os.File) error {
			g, err := comm.Hex(6)
			if err != nil {
				return err
			}
			t, err := clocktree.HTree(g)
			if err != nil {
				return err
			}
			return viz.RenderGraphWithClock(w, g, t, "Fig. 3(c): H-tree clocking a hexagonal array")
		}},
		{"fig4", "Fig. 4: spine clock along a linear array (buffered)", func(w *os.File) error {
			g, err := comm.Linear(16)
			if err != nil {
				return err
			}
			t, err := clocktree.Spine(g)
			if err != nil {
				return err
			}
			b, err := clocktree.Buffered(t, 0.5)
			if err != nil {
				return err
			}
			return viz.RenderGraphWithClock(w, g, b, "Fig. 4: spine clock with A7 buffers")
		}},
		{"fig5", "Fig. 5: folded linear array", func(w *os.File) error {
			g, err := comm.Linear(16)
			if err != nil {
				return err
			}
			folded, err := comm.FoldLinear(g)
			if err != nil {
				return err
			}
			t, err := clocktree.Spine(folded)
			if err != nil {
				return err
			}
			return viz.RenderGraphWithClock(w, folded, t, "Fig. 5: folded array, both ends at the host")
		}},
		{"fig6", "Fig. 6: comb layout of a linear array", func(w *os.File) error {
			g, err := comm.Linear(24)
			if err != nil {
				return err
			}
			comb, err := comm.CombLinear(g, 4)
			if err != nil {
				return err
			}
			t, err := clocktree.Spine(comb)
			if err != nil {
				return err
			}
			return viz.RenderGraphWithClock(w, comb, t, "Fig. 6: comb layout, clock along the chain")
		}},
		{"fig8", "Fig. 8: hybrid synchronization elements", func(w *os.File) error {
			g, err := comm.Mesh(12, 12)
			if err != nil {
				return err
			}
			sys, err := hybrid.New(g, hybrid.Config{
				ElementSize: 4, Handshake: 0.5, LocalDistribution: 0.3,
				CellDelay: 2, HoldDelay: 0.5,
			})
			if err != nil {
				return err
			}
			return viz.RenderHybrid(w, g, sys, "Fig. 8: elements + handshake network")
		}},
	}
}

func main() {
	out := flag.String("out", ".", "output directory for SVG files")
	only := flag.String("figure", "", "render a single figure by name (fig3a…fig8)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	rendered := 0
	for _, f := range figures() {
		if *only != "" && f.name != *only {
			continue
		}
		path := filepath.Join(*out, f.name+".svg")
		file, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := f.render(file); err != nil {
			file.Close()
			fail(fmt.Errorf("%s: %w", f.name, err))
		}
		if err := file.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s — %s\n", path, f.caption)
		rendered++
	}
	if rendered == 0 {
		fail(fmt.Errorf("no figure named %q", *only))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "layoutviz:", err)
	os.Exit(1)
}
