package vlsisync

import (
	"strings"
	"testing"
)

func TestFacadeTopologiesAndClocks(t *testing.T) {
	g, err := LinearArray(8)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := SpineClock(g)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeSkew(g, tree, SummationModel{Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxSkew > 1+1e-9 {
		t.Errorf("spine skew = %g", a.MaxSkew)
	}
}

func TestFacadePlanner(t *testing.T) {
	g, err := MeshArray(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlanSynchronization(g, Assumptions{
		Model: ModelSummation, M: 1, Eps: 0.1, Delta: 2, BufferSpacing: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheme != "hybrid" {
		t.Errorf("scheme = %s", p.Scheme)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	f, err := NewFIR([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.Machine.RunIdeal(f.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(f.Golden(f.Cycles), 1e-9) {
		t.Error("facade FIR diverges")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 15 {
		t.Fatalf("experiment count = %d, want 15", len(ids))
	}
	if ids[0] != "E1" || ids[14] != "E15" {
		t.Errorf("ids = %v", ids)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("E99", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// Each experiment must run in quick mode, produce a table, and pass its
// own shape check — this is the repository's end-to-end reproduction
// gate.
func TestAllExperimentsPassQuick(t *testing.T) {
	results, err := RunAllExperiments(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Table == nil || r.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		if r.PaperClaim == "" || r.Finding == "" {
			t.Errorf("%s: missing claim or finding", r.ID)
		}
		if !r.Pass {
			var b strings.Builder
			_ = r.Table.Render(&b)
			t.Errorf("%s (%s) FAILED:\n%s", r.ID, r.Title, b.String())
		}
	}
}

func TestExperimentTableRenders(t *testing.T) {
	r, err := RunExperiment("E1", true)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.Table.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "topology") {
		t.Errorf("table missing header:\n%s", b.String())
	}
}
