package vlsisync

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFacadeTopologiesAndClocks(t *testing.T) {
	g, err := LinearArray(8)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := SpineClock(g)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeSkew(g, tree, SummationModel{Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxSkew > 1+1e-9 {
		t.Errorf("spine skew = %g", a.MaxSkew)
	}
}

func TestFacadePlanner(t *testing.T) {
	g, err := MeshArray(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlanSynchronization(g, Assumptions{
		Model: ModelSummation, M: 1, Eps: 0.1, Delta: 2, BufferSpacing: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheme != "hybrid" {
		t.Errorf("scheme = %s", p.Scheme)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	f, err := NewFIR([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.Machine.RunIdeal(f.Cycles)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(f.Golden(f.Cycles), 1e-9) {
		t.Error("facade FIR diverges")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("experiment count = %d, want 16", len(ids))
	}
	if ids[0] != "E1" || ids[15] != "E16" {
		t.Errorf("ids = %v", ids)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("E99", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// Each experiment must run in quick mode, produce a table, and pass its
// own shape check — this is the repository's end-to-end reproduction
// gate.
func TestAllExperimentsPassQuick(t *testing.T) {
	results, err := RunAllExperiments(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Table == nil || r.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		if r.PaperClaim == "" || r.Finding == "" {
			t.Errorf("%s: missing claim or finding", r.ID)
		}
		if !r.Pass {
			var b strings.Builder
			_ = r.Table.Render(&b)
			t.Errorf("%s (%s) FAILED:\n%s", r.ID, r.Title, b.String())
		}
	}
}

// renderSuite flattens a result list into one deterministic string:
// every table plus claim and finding, in order.
func renderSuite(t *testing.T, results []*ExperimentResult) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.ID + "|" + r.Title + "|" + r.PaperClaim + "|" + r.Finding + "\n")
		if err := r.Table.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestParallelMatchesSequential is the reproducibility bar for the
// worker pool: the suite rendered from a parallel run must be
// byte-identical to a sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	seq, seqMetrics, err := RunExperiments(context.Background(), RunOptions{Quick: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, parMetrics, err := RunExperiments(context.Background(), RunOptions{Quick: true, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(experiments) || len(par) != len(seq) {
		t.Fatalf("result counts: sequential %d, parallel %d, want %d", len(seq), len(par), len(experiments))
	}
	a, b := renderSuite(t, seq), renderSuite(t, par)
	if a != b {
		t.Errorf("parallel output diverges from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for i := range seqMetrics {
		sm, pm := seqMetrics[i], parMetrics[i]
		if sm.ID != pm.ID || sm.Rows != pm.Rows || sm.Pass != pm.Pass {
			t.Errorf("metric %d differs: sequential %+v, parallel %+v", i, sm, pm)
		}
		if sm.Wall <= 0 {
			t.Errorf("metric %s: no wall time recorded", sm.ID)
		}
	}
}

// TestPartialFailureCollectsResults checks collect-all semantics: an
// erroring (or panicking) experiment loses only its own slot, and the
// aggregated error names every failure.
func TestPartialFailureCollectsResults(t *testing.T) {
	saved := experiments
	defer func() { experiments = saved }()
	boom := errors.New("boom")
	experiments = []experiment{
		saved[0],
		{"EERR", "always errors", func(*runCtx) (*ExperimentResult, error) { return nil, boom }},
		saved[1],
		{"EPANIC", "always panics", func(*runCtx) (*ExperimentResult, error) { panic("kaboom") }},
	}
	for _, parallel := range []int{1, 4} {
		results, metrics, err := RunExperiments(context.Background(), RunOptions{Quick: true, Parallel: parallel})
		if len(results) != 2 {
			t.Fatalf("parallel=%d: completed %d, want the 2 healthy experiments", parallel, len(results))
		}
		if results[0].ID != "E1" || results[1].ID != "E2" {
			t.Errorf("parallel=%d: results out of suite order: %s, %s", parallel, results[0].ID, results[1].ID)
		}
		if !errors.Is(err, boom) {
			t.Errorf("parallel=%d: aggregated error lost the cause: %v", parallel, err)
		}
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("parallel=%d: aggregated error lost the panic: %v", parallel, err)
		}
		if len(metrics) != 4 {
			t.Fatalf("parallel=%d: metrics = %d, want one per experiment", parallel, len(metrics))
		}
		if metrics[1].Err == nil || metrics[1].Status() != "ERROR" {
			t.Errorf("parallel=%d: error metric = %+v", parallel, metrics[1])
		}
		if metrics[3].Err == nil {
			t.Errorf("parallel=%d: panic metric = %+v", parallel, metrics[3])
		}
		// The legacy entry point now returns partial results too.
		partial, allErr := RunAllExperiments(true)
		if len(partial) != 2 || allErr == nil {
			t.Errorf("RunAllExperiments: %d results, err=%v; want 2 and non-nil", len(partial), allErr)
		}
	}
}

// TestRunExperimentsTimeout: a deadline that expires mid-suite reports
// the unfinished experiments as errors instead of hanging or aborting
// the finished ones.
func TestRunExperimentsTimeout(t *testing.T) {
	saved := experiments
	defer func() { experiments = saved }()
	slow := func(rc *runCtx) (*ExperimentResult, error) {
		select {
		case <-rc.ctx.Done():
			return nil, rc.ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, errors.New("timeout never fired")
		}
	}
	experiments = []experiment{
		saved[0],
		{"ESLOW1", "hangs until cancelled", slow},
		{"ESLOW2", "hangs until cancelled", slow},
	}
	start := time.Now()
	results, metrics, err := RunExperiments(context.Background(),
		RunOptions{Quick: true, Parallel: 4, Timeout: 150 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the run (took %v)", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if len(results) != 1 || results[0].ID != "E1" {
		t.Errorf("finished results = %v, want just E1", len(results))
	}
	if len(metrics) != 3 {
		t.Errorf("metrics = %d", len(metrics))
	}
}

// TestCancelledContextRunsNothing: a dead context returns immediately
// with every experiment marked cancelled.
func TestCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, metrics, err := RunExperiments(ctx, RunOptions{Quick: true, Parallel: 2})
	if len(results) != 0 {
		t.Errorf("results = %d, want 0", len(results))
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	for _, m := range metrics {
		if !errors.Is(m.Err, context.Canceled) {
			t.Errorf("metric %s err = %v", m.ID, m.Err)
		}
	}
}

func TestExperimentTableRenders(t *testing.T) {
	r, err := RunExperiment("E1", true)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.Table.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "topology") {
		t.Errorf("table missing header:\n%s", b.String())
	}
}
