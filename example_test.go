package vlsisync_test

import (
	"fmt"

	vlsisync "repro"
)

// ExamplePlanSynchronization shows the paper's decision procedure: a 1D
// array under the robust summation model gets a spine clock with a
// size-independent period.
func ExamplePlanSynchronization() {
	arr, err := vlsisync.LinearArray(100)
	if err != nil {
		panic(err)
	}
	plan, err := vlsisync.PlanSynchronization(arr, vlsisync.Assumptions{
		Model: vlsisync.ModelSummation, M: 1, Eps: 0.1, Delta: 2, BufferSpacing: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheme: %s\n", plan.Scheme)
	fmt.Printf("size-independent: %v\n", plan.SizeIndependent)
	// Output:
	// scheme: spine
	// size-independent: true
}

// ExampleAnalyzeSkew evaluates the summation-model skew of a spine-clocked
// linear array: communicating cells are one pitch apart on the wire.
func ExampleAnalyzeSkew() {
	arr, _ := vlsisync.LinearArray(64)
	tree, _ := vlsisync.SpineClock(arr)
	analysis, err := vlsisync.AnalyzeSkew(arr, tree, vlsisync.SummationModel{Beta: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("pairs analyzed: %d\n", analysis.Pairs)
	fmt.Printf("max skew: %.0f pitch\n", analysis.MaxSkew)
	// Output:
	// pairs analyzed: 63
	// max skew: 1 pitch
}

// ExampleNewFIR runs a 3-tap systolic FIR filter in ideal lock step and
// reads back the convolution.
func ExampleNewFIR() {
	fir, err := vlsisync.NewFIR([]float64{1, 2, 3}, []float64{4, 5, 6, 7})
	if err != nil {
		panic(err)
	}
	trace, err := fir.Machine.RunIdeal(fir.Cycles)
	if err != nil {
		panic(err)
	}
	fmt.Println(fir.Outputs(trace))
	// Output:
	// [4 13 28 34]
}

// ExampleNewInverterString reproduces the Section VII measurement: the
// 2048-inverter chip pipelined 68× faster than it could be clocked
// equipotentially.
func ExampleNewInverterString() {
	chip, err := vlsisync.NewInverterString(vlsisync.SectionVIIChip(), vlsisync.NewRNG(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("speedup: %.0fx\n", chip.Speedup())
	// Output:
	// speedup: 68x
}

// ExampleNewSorter sorts keys on an odd-even transposition array.
func ExampleNewSorter() {
	s, err := vlsisync.NewSorter([]float64{3, 1, 4, 1, 5})
	if err != nil {
		panic(err)
	}
	trace, err := s.Machine.RunIdeal(s.Cycles)
	if err != nil {
		panic(err)
	}
	sorted, err := s.Sorted(trace)
	if err != nil {
		panic(err)
	}
	fmt.Println(sorted)
	// Output:
	// [1 1 3 4 5]
}
