// fir1d demonstrates Theorem 3 end to end: a one-dimensional systolic
// FIR filter clocked by a spine stays correct at a clock period that does
// not grow with the array, while an H-tree clock under the summation
// model forces both delay padding and the clock period up. Skew is
// absorbed the way the paper says real designs absorb it: "lowering
// clock rates and/or adding delay to circuits" — cells are padded so
// that their contamination delay covers the worst receiver clock lag
// (otherwise hold violations corrupt data at *any* period), and then the
// minimum working period is found by bisection against the ideal trace.
package main

import (
	"fmt"
	"log"

	vlsisync "repro"
	"repro/internal/array"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/systolic"
)

// Wire delay parameters of Section III: every unit of clock wire delays
// the edge by m ± eps, and fabrication variation (the adversary of the
// summation model) chooses the sign. The worst case for a communicating
// pair at tree distance s is a skew of eps·s (assumption A11).
const (
	wireM   = 1.0
	wireEps = 0.2
)

func main() {
	fmt.Println("minimum working clock period of an n-tap systolic FIR filter")
	fmt.Println("(base δ = 1; wire delay m = 1 ± 0.2 per pitch; bisected to 1e-3)")
	fmt.Println()
	fmt.Println("  n    spine period   htree pad δ   htree period")
	for _, n := range []int{4, 8, 16, 32, 64} {
		spine, _, err := minPeriod(n, "spine")
		if err != nil {
			log.Fatal(err)
		}
		htree, pad, err := minPeriod(n, "htree")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d    %9.3f   %11.3f   %12.3f\n", n, spine, pad, htree)
	}
	fmt.Println()
	fmt.Println("The spine column is flat (Theorem 3); the H-tree column grows,")
	fmt.Println("because under the summation model cells adjacent in the array can")
	fmt.Println("be far apart on the H-tree (the Section V failure).")

	// Fig. 6: the comb layout gives a 1D array any aspect ratio while
	// keeping the spine's neighbor distances bounded.
	base, err := vlsisync.LinearArray(32)
	if err != nil {
		log.Fatal(err)
	}
	comb, err := vlsisync.CombLinear(base, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomb layout: 32 cells in a %.0f x %.0f bounding box (aspect %.2g)\n",
		comb.Bounds().Width(), comb.Bounds().Height(), comb.Bounds().AspectRatio())
}

// minPeriod builds an n-tap FIR, derives per-cell clock arrival times
// from the chosen clock tree under the A11 adversary, pads the cell
// delay to cover the worst receiver clock lag (the paper's "adding delay
// to circuits"), and bisects for the smallest period that still
// reproduces the ideal trace. It returns (period, padded δ).
func minPeriod(n int, scheme string) (float64, float64, error) {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	fir, err := systolic.NewFIR(weights, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		return 0, 0, err
	}
	g := fir.Machine.Graph()

	var tree *clocktree.Tree
	switch scheme {
	case "spine":
		tree, err = clocktree.Spine(g)
	case "htree":
		tree, err = clocktree.HTree(g)
	}
	if err != nil {
		return 0, 0, err
	}

	// Adversarial summation-model arrival times: wires in the clock
	// root's first subtree run slow (m + eps per unit), the rest fast
	// (m − eps). Cells on opposite sides of the root then skew apart by
	// eps times their full tree distance — the A11 worst case. On the
	// spine (a chain, one subtree) the same adversary can only shift
	// neighbors by (m ± eps) per cell pitch.
	off := array.Offsets{Cell: make([]float64, g.NumCells())}
	for _, c := range g.Cells {
		node, _ := tree.CellNode(c.ID)
		off.Cell[c.ID] = tree.RootDist(node) * (wireM + wireEps*side(tree, node))
	}
	shiftNonNegative(off.Cell)
	off.Host = off.Cell[0]
	off.HostRead = off.Cell[g.NumCells()-1]

	// Pad δ so the contamination delay covers the worst receiver lag —
	// without this, hold violations corrupt the array at any period.
	delta := 1.0
	if lag := maxReceiverLag(fir.Machine, off); lag*1.05 > delta {
		delta = lag * 1.05
	}
	timing := array.Timing{CellDelay: delta, HoldDelay: delta}
	p, err := fir.Machine.MinWorkingPeriod(fir.Cycles, timing, off, 0, 100, 1e-3)
	return p, delta, err
}

// side maps a tree node to +1 (slow wires) if it lies in the root's first
// child subtree and −1 (fast wires) otherwise.
func side(tree *clocktree.Tree, node clocktree.NodeID) float64 {
	prev := node
	for p := tree.Parent(node); p >= 0; p = tree.Parent(prev) {
		if p == tree.Root() {
			if len(tree.Children(p)) > 0 && tree.Children(p)[0] == prev {
				return 1
			}
			return -1
		}
		prev = p
	}
	return 1
}

func shiftNonNegative(xs []float64) {
	min := xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	for i := range xs {
		xs[i] -= min
	}
}

// maxReceiverLag returns the largest amount by which any receiver's clock
// trails its sender's — the hold exposure the cell delay must cover.
func maxReceiverLag(m *array.Machine, off array.Offsets) float64 {
	var worst float64
	at := func(c comm.CellID, host float64) float64 {
		if c == comm.Host {
			return host
		}
		return off.Cell[c]
	}
	for _, e := range m.Graph().Edges {
		lag := at(e.To, off.HostRead) - at(e.From, off.Host)
		if lag > worst {
			worst = lag
		}
	}
	return worst
}
