// pipelineclock walks through the Section VII story: a long clock line is
// replaced by an inverter string; equipotential clocking pays the full
// line delay every cycle, pipelined clocking keeps several events in
// flight and pays only the accumulated rise/fall discrepancy — 68× faster
// on the paper's 2048-stage chip — and the paper's one-shot pulse
// generator removes even that ceiling.
package main

import (
	"fmt"
	"log"

	vlsisync "repro"
	"repro/internal/stats"
	"repro/internal/wiresim"
)

func main() {
	fmt.Println("Section VII: clocking a 2048-inverter distribution line")
	fmt.Println()

	// 1. The paper's chip, as calibrated: equipotential vs pipelined.
	cfg := vlsisync.SectionVIIChip()
	chip, err := vlsisync.NewInverterString(cfg, vlsisync.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	equi := chip.EquipotentialCycle()
	pipe := chip.MinPipelinedPeriod()
	fmt.Printf("equipotential cycle: %8.1f ns   (paper: ~34000 ns)\n", equi*1e9)
	fmt.Printf("pipelined cycle:     %8.1f ns   (paper: ~500 ns)\n", pipe*1e9)
	fmt.Printf("speedup:             %8.1f x    (paper: 68x)\n\n", equi/pipe)

	// 2. Verify with the event-level simulation: drive 10 full clock
	// cycles through all 2048 stages just above the closed-form minimum.
	res, err := chip.PipelinedRun(pipe*1.01, 10, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event simulation at 1.01x the minimum period: %d edges delivered, %d violations\n",
		res.EdgesDelivered, res.Violations)
	below, err := chip.PipelinedRun(pipe*0.7, 10, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event simulation at 0.70x the minimum period: %d violations (pulses collapse)\n\n",
		below.Violations)

	// 3. The paper's fix: one-shot pulse generation regenerates falling
	// edges locally, so the design bias cannot accumulate.
	cfg.OneShot = true
	fixed, err := vlsisync.NewInverterString(cfg, vlsisync.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with one-shot buffers: pipelined cycle %0.1f ns, speedup %0.0fx\n\n",
		fixed.MinPipelinedPeriod()*1e9, fixed.Speedup())

	// 4. The probabilistic limit that remains: random per-stage variation
	// accumulates as sqrt(n) (Section VII's yield analysis).
	fmt.Println("random-variation ceiling (no design bias, noise sd = 0.05 stage delays):")
	fmt.Println("     n    mean accumulated discrepancy")
	for _, n := range []int{256, 1024, 4096} {
		var sum float64
		const chips = 40
		for seed := int64(0); seed < chips; seed++ {
			s, err := wiresim.NewString(wiresim.Config{N: n, StageDelay: 1, NoiseSD: 0.05},
				stats.NewRNG(seed))
			if err != nil {
				log.Fatal(err)
			}
			sum += s.MaxDiscrepancy()
		}
		fmt.Printf("%6d    %8.3f stage delays\n", n, sum/chips)
	}
	fmt.Println("\nquadrupling n doubles the discrepancy — the sqrt(n) law of Section VII.")
}
