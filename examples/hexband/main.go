// hexband runs band matrix multiplication on the hexagonal array of
// Fig. 3(c) — the workload hexagonal systolic arrays were designed for —
// and verifies the same computation under clock skew and under hybrid
// synchronization.
package main

import (
	"fmt"
	"log"

	vlsisync "repro"
	"repro/internal/array"
	"repro/internal/hybrid"
)

func main() {
	const (
		n = 12 // matrix dimension
		p = 2  // sub-diagonals
		q = 1  // super-diagonals
	)
	rng := vlsisync.NewRNG(42)
	a := vlsisync.NewBandMatrix(n, p, q, func(i, j int) float64 { return rng.Uniform(-2, 2) })
	b := vlsisync.NewBandMatrix(n, p, q, func(i, j int) float64 { return rng.Uniform(-2, 2) })

	bm, err := vlsisync.NewBandMatMul(a, b, p, q)
	if err != nil {
		log.Fatal(err)
	}
	w := p + q + 1
	fmt.Printf("band matrices: %dx%d with offsets [-%d, %d] (bandwidth %d)\n", n, n, p, q, w)
	fmt.Printf("hex array: %dx%d cells, %d cycles\n\n", w, w, bm.Cycles)

	want, err := a.Mul(b)
	if err != nil {
		log.Fatal(err)
	}

	check := func(name string, tr *vlsisync.Trace) {
		got, err := bm.Extract(tr)
		if err != nil {
			log.Fatal(err)
		}
		if got.Equal(want, 1e-9) {
			fmt.Printf("%-22s C = A·B matches the direct product\n", name+":")
		} else {
			fmt.Printf("%-22s DIVERGED\n", name+":")
		}
	}

	// 1. Ideal lock step (A1).
	ideal, err := bm.Machine.RunIdeal(bm.Cycles)
	if err != nil {
		log.Fatal(err)
	}
	check("ideal lock step", ideal)

	// 2. Clocked with tolerable random skew.
	off := array.Offsets{Cell: make([]float64, bm.Machine.NumCells()), Host: 0.1, HostRead: 0.1}
	for i := range off.Cell {
		off.Cell[i] = rng.Uniform(0, 0.3)
	}
	clocked, err := bm.Machine.RunClocked(bm.Cycles,
		array.Timing{Period: 4, CellDelay: 2, HoldDelay: 0.5}, off)
	if err != nil {
		log.Fatal(err)
	}
	check("clocked (σ≈0.3)", clocked)

	// 3. Hybrid synchronization (Section VI).
	sys, err := hybrid.New(bm.Machine.Graph(), hybrid.Config{
		ElementSize: 2, Handshake: 0.5, LocalDistribution: 0.3,
		CellDelay: 2, HoldDelay: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	hyb, err := sys.Run(bm.Machine, bm.Cycles)
	if err != nil {
		log.Fatal(err)
	}
	check("hybrid handshake", hyb)

	// 4. And the failure mode: a period below δ corrupts the product.
	broken, err := bm.Machine.RunClocked(bm.Cycles,
		array.Timing{Period: 1.2, CellDelay: 2, HoldDelay: 0.5}, off)
	if err != nil {
		log.Fatal(err)
	}
	if got, err := bm.Extract(broken); err != nil || !got.Equal(want, 1e-9) {
		fmt.Printf("%-22s corrupted, as A5 predicts (period 1.2 < δ = 2)\n", "underclocked:")
	} else {
		fmt.Printf("%-22s unexpectedly survived\n", "underclocked:")
	}
}
