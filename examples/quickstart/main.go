// Quickstart: build a one-dimensional systolic array, plan its clock
// with the paper's decision procedure, analyze the skew, and run a FIR
// filter end-to-end under the planned clocking.
package main

import (
	"fmt"
	"log"

	vlsisync "repro"
)

func main() {
	// 1. A 64-cell linear array (Fig. 4(a) of the paper).
	arr, err := vlsisync.LinearArray(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %s, %d cells\n", arr.Name, arr.NumCells())

	// 2. Ask the planner what the paper prescribes under the robust
	// summation model of clock skew.
	plan, err := vlsisync.PlanSynchronization(arr, vlsisync.Assumptions{
		Model:         vlsisync.ModelSummation,
		M:             1,   // wire delay per cell pitch
		Eps:           0.1, // fabrication variation per cell pitch
		Delta:         2,   // cell compute + propagate delay δ
		BufferSpacing: 1,   // clock buffer every cell pitch (A7)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned scheme: %s (period %.3g, size-independent: %v)\n",
		plan.Scheme, plan.Period, plan.SizeIndependent)
	fmt.Printf("rationale: %s\n\n", plan.Rationale)

	// 3. Check the skew directly: with the spine clock, the worst pair
	// of communicating cells is one cell pitch apart on the clock wire.
	analysis, err := vlsisync.AnalyzeSkew(arr, plan.Tree,
		vlsisync.SummationModel{Beta: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summation-model skew bound over %d pairs: %.3g (worst pair s = %.3g)\n\n",
		analysis.Pairs, analysis.MaxSkew, analysis.WorstPair.S)

	// 4. Run a real workload: an 8-tap systolic FIR filter, ideally and
	// clocked, and compare against direct convolution.
	fir, err := vlsisync.NewFIR(
		[]float64{0.25, 0.5, 1, 0.5, 0.25, 0.1, -0.1, 0.05},
		[]float64{1, 2, 3, 4, 5, 4, 3, 2, 1, 0, -1, -2})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := fir.Machine.RunIdeal(fir.Cycles)
	if err != nil {
		log.Fatal(err)
	}
	if trace.Equal(fir.Golden(fir.Cycles), 1e-9) {
		fmt.Println("systolic FIR output matches direct convolution")
	} else {
		fmt.Println("systolic FIR DIVERGED (bug!)")
	}
	fmt.Printf("first outputs: %.3v\n", fir.Outputs(trace)[:6])
}
