// treemachine demonstrates Section VIII: a Bentley–Kung searching tree
// machine on an H-tree layout with pipeline registers on long wires — one
// command per cycle regardless of size, with O(√N) latency.
package main

import (
	"fmt"
	"log"

	"repro/internal/treemachine"
)

func main() {
	fmt.Println("pipelined tree machine (buffer spacing 1.5 cell pitches)")
	fmt.Println()
	fmt.Println("levels      N   regs/level (top->bottom)   latency   interval")
	for _, levels := range []int{4, 6, 8, 10} {
		m, err := treemachine.New(treemachine.Config{Levels: levels, BufferSpacing: 1.5})
		if err != nil {
			log.Fatal(err)
		}
		ops := make([]treemachine.Op, 200)
		for i := range ops {
			if i%2 == 0 {
				ops[i] = treemachine.Op{Kind: treemachine.Insert, Key: int64(i)}
			} else {
				ops[i] = treemachine.Op{Kind: treemachine.Query, Key: int64(i - 1)}
			}
		}
		results, st, err := m.Run(ops)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Op.Kind == treemachine.Query && !r.Found {
				log.Fatalf("query %d missed its inserted key", r.Op.Key)
			}
		}
		fmt.Printf("%6d  %5d   %-24v  %8d   %8.2f\n",
			levels, m.Nodes(), m.RegistersPerLevel(), st.Latency, st.Interval)
	}
	fmt.Println()
	fmt.Println("Latency grows with the H-tree's long upper wires (O(sqrt(N)) register")
	fmt.Println("stages) while the initiation interval stays one command per cycle —")
	fmt.Println("the constant pipeline rate Section VIII promises.")

	// A small end-to-end search session.
	m, err := treemachine.New(treemachine.Config{Levels: 6, BufferSpacing: 1.5})
	if err != nil {
		log.Fatal(err)
	}
	session := []treemachine.Op{
		{Kind: treemachine.Insert, Key: 17},
		{Kind: treemachine.Insert, Key: 42},
		{Kind: treemachine.Query, Key: 17},
		{Kind: treemachine.Query, Key: 99},
		{Kind: treemachine.Query, Key: 42},
	}
	results, _, err := m.Run(session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsession on a 31-leaf machine:")
	for _, r := range results {
		kind := "insert"
		if r.Op.Kind == treemachine.Query {
			kind = "query "
		}
		fmt.Printf("  cycle %3d: %s %3d", r.IssueCycle, kind, r.Op.Key)
		if r.Op.Kind == treemachine.Query {
			fmt.Printf(" -> found=%v (answered cycle %d)", r.Found, r.AnswerCycle)
		}
		fmt.Println()
	}
}
