// matmul2d demonstrates Section VI: a two-dimensional systolic matrix
// multiplier cannot be globally clocked at constant period under the
// summation model (Theorem 6), but the hybrid element/handshake scheme
// runs it at a size-independent cycle with exactly correct results.
package main

import (
	"fmt"
	"log"

	vlsisync "repro"
	"repro/internal/clocktree"
	"repro/internal/hybrid"
	"repro/internal/skew"
	"repro/internal/stats"
	"repro/internal/systolic"
)

func main() {
	cfg := hybrid.Config{
		ElementSize:       4,
		Handshake:         0.5,
		LocalDistribution: 0.4,
		CellDelay:         2,
		HoldDelay:         0.5,
	}
	fmt.Println("n x n systolic matmul: global clock vs hybrid synchronization")
	fmt.Println("(summation model ε = 0.1 per pitch; δ = 2)")
	fmt.Println()
	fmt.Println("  n   global A5 period   certified σ bound   hybrid cycle   hybrid correct")
	for _, n := range []int{4, 8, 12, 16} {
		mesh, err := vlsisync.MeshArray(n, n)
		if err != nil {
			log.Fatal(err)
		}
		// Global clock: best case is an H-tree; under the summation
		// model its A5 period grows with n.
		tree, err := clocktree.HTree(mesh)
		if err != nil {
			log.Fatal(err)
		}
		analysis, err := skew.Analyze(mesh, tree,
			skew.Summation{G: func(s float64) float64 { return 0.1 * s }, Beta: 0.1})
		if err != nil {
			log.Fatal(err)
		}
		globalPeriod := analysis.MaxSkew + cfg.CellDelay
		cert, err := skew.MeshCertifiedLowerBound(mesh, tree, 0.1)
		if err != nil {
			log.Fatal(err)
		}

		// Hybrid: run the actual multiplier and verify.
		ok, cycle, err := runHybridMatMul(n, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d   %16.3f   %17.3f   %12.3f   %v\n",
			n, globalPeriod, cert.Bound, cycle, ok)
	}
	fmt.Println()
	fmt.Println("The global period (and even the certified lower bound on any clock")
	fmt.Println("tree's skew) grows with n, while the hybrid cycle stays at the")
	fmt.Println("constant wave cost — with bit-exact systolic results.")
}

func runHybridMatMul(n int, cfg hybrid.Config) (bool, float64, error) {
	rng := stats.NewRNG(int64(n))
	a := systolic.NewMatrix(n, n)
	b := systolic.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Uniform(-2, 2)
		b.Data[i] = rng.Uniform(-2, 2)
	}
	mm, err := systolic.NewMatMul(a, b)
	if err != nil {
		return false, 0, err
	}
	sys, err := hybrid.New(mm.Machine.Graph(), cfg)
	if err != nil {
		return false, 0, err
	}
	trace, err := sys.Run(mm.Machine, mm.Cycles)
	if err != nil {
		return false, 0, err
	}
	got, err := mm.Extract(trace)
	if err != nil {
		return false, 0, err
	}
	want, err := a.Mul(b)
	if err != nil {
		return false, 0, err
	}
	return got.Equal(want, 1e-6), sys.CycleTime(mm.Cycles), nil
}
