package vlsisync

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/array"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/embed"
	"repro/internal/hybrid"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/selftimed"
	"repro/internal/skew"
	"repro/internal/stats"
	"repro/internal/systolic"
	"repro/internal/treemachine"
	"repro/internal/wiresim"
)

// ExperimentResult is the outcome of reproducing one of the paper's
// claims (see DESIGN.md §4 for the experiment index).
type ExperimentResult struct {
	ID         string
	Title      string
	PaperClaim string
	Finding    string
	Pass       bool
	Table      *report.Table
}

// runCtx carries one run's settings into the experiment runners. Every
// runner derives its randomness from fixed per-task seeds, so results
// are identical at any worker count — the suite's reproducibility bar.
type runCtx struct {
	ctx   context.Context
	quick bool
	// workers bounds the fan-out of an experiment's *inner* sweeps
	// (e.g. E7's per-chip Monte Carlo); 1 keeps them sequential.
	workers int
}

// experiment binds an ID to its runner.
type experiment struct {
	id, title string
	run       func(rc *runCtx) (*ExperimentResult, error)
}

// experiments lists the full suite in DESIGN.md order.
var experiments = []experiment{
	{"E1", "Theorem 2 / Fig. 3: H-tree under the difference model", runE1},
	{"E2", "Section V: H-tree fails under the summation model", runE2},
	{"E3", "Theorem 3 / Figs. 4-6: spine clocking of 1D arrays", runE3},
	{"E4", "Theorem 6 / Fig. 7: Ω(n) mesh skew lower bound", runE4},
	{"E5", "Section I: self-timed arrays converge to worst case", runE5},
	{"E6", "Section VII: pipelined vs equipotential inverter string", runE6},
	{"E7", "Section VII: √n growth of random discrepancy", runE7},
	{"E8", "Section VI / Fig. 8: hybrid synchronization", runE8},
	{"E9", "A5: minimum working clock period σ + δ", runE9},
	{"E10", "Theorem 2 support: rectangular-to-square grid folding", runE10},
	{"E11", "Section VIII: pipelined tree machine", runE11},
}

// ExperimentIDs returns the suite's experiment identifiers in order.
func ExperimentIDs() []string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	return ids
}

// RunExperiment reproduces one claim. With quick set, sweeps are reduced
// for test and benchmark use; the shapes tested are the same.
func RunExperiment(id string, quick bool) (*ExperimentResult, error) {
	return RunExperimentCtx(context.Background(), id, quick)
}

// RunExperimentCtx is RunExperiment with context propagation: a tracer
// carried by ctx (obs.WithTracer) records the experiment's span tree,
// and cancellation reaches the experiment's inner sweeps.
func RunExperimentCtx(ctx context.Context, id string, quick bool) (*ExperimentResult, error) {
	for _, e := range experiments {
		if e.id == id {
			return runOne(ctx, e, quick, 1)
		}
	}
	return nil, fmt.Errorf("vlsisync: unknown experiment %q (have %v)", id, ExperimentIDs())
}

// runOne executes one experiment under an "experiment.<ID>" span.
func runOne(ctx context.Context, e experiment, quick bool, workers int) (*ExperimentResult, error) {
	ctx, span := obs.Start(ctx, "experiment."+e.id, obs.String("title", e.title))
	defer span.End()
	res, err := e.run(&runCtx{ctx: ctx, quick: quick, workers: workers})
	if res != nil {
		span.Annotate(
			obs.Int("rows", int64(res.Table.NumRows())),
			obs.String("pass", fmt.Sprintf("%v", res.Pass)))
	}
	return res, err
}

// RunOptions configures a suite run.
type RunOptions struct {
	// Quick reduces sweep sizes for test and benchmark use.
	Quick bool
	// Parallel bounds how many experiments run concurrently and how far
	// an experiment may fan out its inner sweeps. Values <= 1 run the
	// suite strictly sequentially. The rendered tables are identical at
	// every setting; only wall time changes.
	Parallel int
	// Timeout, when positive, bounds the whole run. Experiments not
	// finished at the deadline are reported as errors; completed ones
	// keep their results.
	Timeout time.Duration
	// Tracer, when set, records the run's span tree (one span per
	// experiment with the engine spans nested underneath). Tracing never
	// touches the experiments' RNG streams or results, so the rendered
	// tables stay byte-identical with or without it.
	Tracer *obs.Tracer
}

// RunExperiments reproduces the suite under opts. It returns the results
// of every experiment that completed (in suite order), one RunMetric per
// experiment (wall time, sweep rows, pass/fail/error, also in suite
// order), and the aggregated error of all failures, nil if none.
//
// Failure handling is collect-all: one flaky experiment costs only its
// own slot, never the others' results.
func RunExperiments(ctx context.Context, opts RunOptions) ([]*ExperimentResult, []report.RunMetric, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	ctx = obs.WithTracer(ctx, opts.Tracer)
	rs := runner.Map(ctx, workers, len(experiments),
		func(ctx context.Context, i int) (*ExperimentResult, error) {
			return runOne(ctx, experiments[i], opts.Quick, workers)
		})
	results := make([]*ExperimentResult, 0, len(rs))
	metrics := make([]report.RunMetric, len(rs))
	var errs []error
	for i, r := range rs {
		m := report.RunMetric{ID: experiments[i].id, Wall: r.Wall, Err: r.Err}
		if r.Err == nil {
			m.Pass = r.Value.Pass
			m.Rows = r.Value.Table.NumRows()
			results = append(results, r.Value)
		} else {
			errs = append(errs, fmt.Errorf("vlsisync: %s: %w", experiments[i].id, r.Err))
		}
		metrics[i] = m
	}
	return results, metrics, errors.Join(errs...)
}

// RunAllExperiments reproduces the whole suite in order. Unlike earlier
// revisions it does not abort on the first failure: it returns every
// completed experiment's result alongside the aggregated error of the
// ones that failed.
func RunAllExperiments(quick bool) ([]*ExperimentResult, error) {
	results, _, err := RunExperiments(context.Background(), RunOptions{Quick: quick, Parallel: 1})
	return results, err
}

func sizes(quick bool, full, reduced []int) []int {
	if quick {
		return reduced
	}
	return full
}

// runE1: equalized H-trees give zero difference-model skew on linear,
// square, and hexagonal arrays, with constant-factor wire area (Lemma 1,
// Theorem 2).
func runE1(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E1: H-tree, difference model f(d)=d",
		"topology", "n", "cells", "max skew", "wire/cell")
	model := skew.Difference{}
	pass := true
	type topo struct {
		name  string
		build func(n int) (*comm.Graph, error)
	}
	topos := []topo{
		{"linear", comm.Linear},
		{"square", func(n int) (*comm.Graph, error) { return comm.Mesh(n, n) }},
		{"hex", comm.Hex},
	}
	firstWire := map[string]float64{}
	for _, tp := range topos {
		for _, n := range sizes(rc.quick, []int{4, 8, 16, 32}, []int{4, 8, 16}) {
			g, err := tp.build(n)
			if err != nil {
				return nil, err
			}
			tree, err := clocktree.HTree(g)
			if err != nil {
				return nil, err
			}
			tree.Equalize()
			a, err := skew.AnalyzeCtx(rc.ctx, g, tree, model)
			if err != nil {
				return nil, err
			}
			wirePerCell := tree.TotalWireLength() / float64(g.NumCells())
			tbl.AddRow(tp.name, n, g.NumCells(), a.MaxSkew, wirePerCell)
			if a.MaxSkew > 1e-9 {
				pass = false
			}
			if w0, ok := firstWire[tp.name]; !ok {
				firstWire[tp.name] = wirePerCell
			} else if wirePerCell > 3*w0 {
				pass = false // wire area per cell must stay bounded
			}
		}
	}
	return &ExperimentResult{
		ID:    "E1",
		Title: "Theorem 2 / Fig. 3: H-tree under the difference model",
		PaperClaim: "An equalized H-tree clocks any bounded-aspect array with " +
			"skew bounded by f(0) — size-independent period — at constant-factor area.",
		Finding: "Max difference-model skew is 0 at every size and topology; " +
			"clock wire per cell stays bounded.",
		Pass:  pass,
		Table: tbl,
	}, nil
}

// runE2: the same H-tree under the summation model has skew growing with
// array size even on linear arrays (the Fig. 3(a) failure the paper uses
// to motivate Section V).
func runE2(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E2: H-tree on linear arrays, summation model g(s)=s",
		"n", "max skew", "worst pair s")
	var ns, skews []float64
	for _, n := range sizes(rc.quick, []int{8, 16, 32, 64, 128, 256}, []int{8, 16, 32, 64}) {
		g, err := comm.Linear(n)
		if err != nil {
			return nil, err
		}
		tree, err := clocktree.HTree(g)
		if err != nil {
			return nil, err
		}
		a, err := skew.AnalyzeCtx(rc.ctx, g, tree, skew.Summation{Beta: 1})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, a.MaxSkew, a.WorstPair.S)
		ns = append(ns, float64(n))
		skews = append(skews, a.MaxSkew)
	}
	fit, err := stats.FitPowerLaw(ns, skews)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		ID:    "E2",
		Title: "Section V: H-tree fails under the summation model",
		PaperClaim: "Two communicating cells of a linear array can be connected " +
			"by an H-tree path of length growing with the array, so the " +
			"summation-model skew is unbounded.",
		Finding: fmt.Sprintf("Max skew grows as n^%.2f (R²=%.3f) — unbounded, as claimed.",
			fit.B, fit.R2),
		Pass:  fit.B > 0.5,
		Table: tbl,
	}, nil
}

// runE3: spine clocking keeps summation-model skew and the end-to-end
// minimum working period constant on 1D arrays of any size, in straight,
// folded, and comb layouts (Theorem 3, Figs. 4-6).
func runE3(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E3: spine clock on 1D arrays, summation model g(s)=s",
		"layout", "n", "max skew", "FIR min period")
	pass := true
	var periods []float64
	for _, n := range sizes(rc.quick, []int{8, 32, 128}, []int{6, 12}) {
		layouts := []struct {
			name  string
			remap func(*comm.Graph) (*comm.Graph, error)
		}{
			{"straight", func(g *comm.Graph) (*comm.Graph, error) { return g, nil }},
			{"folded", comm.FoldLinear},
			{"comb", func(g *comm.Graph) (*comm.Graph, error) { return comm.CombLinear(g, 4) }},
		}
		for _, lay := range layouts {
			base, err := comm.Linear(n)
			if err != nil {
				return nil, err
			}
			g, err := lay.remap(base)
			if err != nil {
				return nil, err
			}
			tree, err := clocktree.Spine(g)
			if err != nil {
				return nil, err
			}
			a, err := skew.AnalyzeCtx(rc.ctx, g, tree, skew.Summation{Beta: 1})
			if err != nil {
				return nil, err
			}
			if a.MaxSkew > 2+1e-9 {
				pass = false
			}
			minP := math.NaN()
			if lay.name == "straight" {
				p, err := firMinPeriod(rc.ctx, n, 0.05)
				if err != nil {
					return nil, err
				}
				minP = p
				periods = append(periods, p)
			}
			tbl.AddRow(lay.name, n, a.MaxSkew, minP)
		}
	}
	for _, p := range periods[1:] {
		if math.Abs(p-periods[0]) > 0.2 {
			pass = false
		}
	}
	return &ExperimentResult{
		ID:    "E3",
		Title: "Theorem 3 / Figs. 4-6: spine clocking of 1D arrays",
		PaperClaim: "Running the clock along a one-dimensional array bounds the " +
			"skew between communicating cells by a constant, so the clock period " +
			"is independent of array size — also for folded and comb layouts.",
		Finding: "Skew ≤ cell pitch at every size and layout; the measured " +
			"minimum working period of a systolic FIR filter does not grow with n.",
		Pass:  pass,
		Table: tbl,
	}, nil
}

// firMinPeriod builds an n-tap FIR array, derives per-cell clock offsets
// from the spine tree (arrival = wire delay × unit), and bisects for the
// minimum period that still reproduces the ideal output.
func firMinPeriod(ctx context.Context, n int, unitSkewPerPitch float64) (float64, error) {
	_, span := obs.Start(ctx, "systolic.fir", obs.Int("taps", int64(n)))
	defer span.End()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	f, err := systolic.NewFIR(weights, xs)
	if err != nil {
		return 0, err
	}
	g := f.Machine.Graph()
	tree, err := clocktree.Spine(g)
	if err != nil {
		return 0, err
	}
	off := array.Offsets{Cell: make([]float64, g.NumCells())}
	for _, c := range g.Cells {
		off.Cell[c.ID] = tree.CellRootDist(c.ID) * unitSkewPerPitch
	}
	// Fig. 5: the host's write port taps the clock where the spine
	// starts and its read port where the spine returns (folded layout),
	// so neither host port sees skew growing with n.
	off.Host = 0
	off.HostRead = off.Cell[g.NumCells()-1]
	timing := array.Timing{CellDelay: 1, HoldDelay: 0.5}
	cycles := f.Cycles
	if cycles > 40 {
		cycles = 40
	}
	return f.Machine.MinWorkingPeriod(cycles, timing, off, 0, 20, 1e-3)
}

// runE4: the Section V-B lower bound — for every candidate clock tree on
// an n×n mesh the guaranteed summation skew is Ω(n), and the mechanized
// proof's certified bound grows linearly while staying below it.
func runE4(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E4: n×n mesh, summation model with β=1",
		"n", "best tree", "min guaranteed skew", "certified bound")
	model := skew.Summation{Beta: 1}
	factories := skew.StandardFactories(3, 1234)
	var ns, best []float64
	pass := true
	for _, n := range sizes(rc.quick, []int{6, 8, 12, 16, 24, 32}, []int{6, 10, 16}) {
		g, err := comm.Mesh(n, n)
		if err != nil {
			return nil, err
		}
		res, err := skew.MinSkewOverTrees(g, model, factories)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, res.TreeName, res.MinGuaranteedSkew, res.Certified)
		if res.Certified > res.MinGuaranteedSkew+1e-6 {
			pass = false // certified bound must be sound
		}
		ns = append(ns, float64(n))
		best = append(best, res.MinGuaranteedSkew)
	}
	fit, err := stats.FitPowerLaw(ns, best)
	if err != nil {
		return nil, err
	}
	if fit.B < 0.6 {
		pass = false
	}
	return &ExperimentResult{
		ID:    "E4",
		Title: "Theorem 6 / Fig. 7: Ω(n) mesh skew lower bound",
		PaperClaim: "No clock tree keeps the maximum skew between communicating " +
			"cells of an n×n array bounded: σ = Ω(n) under the summation model.",
		Finding: fmt.Sprintf("Even the best of H-tree/serpentine/random trees has "+
			"guaranteed skew growing as n^%.2f; the mechanized separator-and-circle "+
			"proof certifies a linear lower bound below it.", fit.B),
		Pass:  pass,
		Table: tbl,
	}, nil
}

// runE5: Section I's self-timing analysis — rigid waves hit the worst
// case with probability 1 − p^k, so large arrays run at worst-case speed.
func runE5(rc *runCtx) (*ExperimentResult, error) {
	d := selftimed.Delays{Fast: 1, Worst: 2, PWorst: 0.1}
	p := 1 - d.PWorst
	waves := 4000
	if rc.quick {
		waves = 800
	}
	tbl := report.NewTable("E5: self-timed 1D arrays, fast=1 worst=2 P(worst)=0.1",
		"k cells", "1-p^k", "predicted interval", "rigid interval", "elastic interval")
	pass := true
	// Each sweep point seeds its own generators from k, so the points
	// fan out across workers and reassemble in order bit-for-bit.
	ks := sizes(rc.quick, []int{1, 2, 4, 8, 16, 32, 64, 128}, []int{1, 4, 16, 64})
	type point struct {
		prob, predicted, rigid, elastic float64
	}
	rs := runner.Map(rc.ctx, rc.workers, len(ks), func(ctx context.Context, i int) (point, error) {
		k := ks[i]
		g, err := comm.Linear(k)
		if err != nil {
			return point{}, err
		}
		rigid, err := selftimed.RunRigidCtx(ctx, g, waves, d, stats.NewRNG(int64(k)))
		if err != nil {
			return point{}, err
		}
		elastic, err := selftimed.RunElasticCtx(ctx, g, waves, d, 1, stats.NewRNG(int64(k)))
		if err != nil {
			return point{}, err
		}
		prob := selftimed.WorstCaseProb(p, k)
		return point{
			prob:      prob,
			predicted: d.Fast + (d.Worst-d.Fast)*prob,
			rigid:     rigid.MeanInterval,
			elastic:   elastic.MeanInterval,
		}, nil
	})
	if err := runner.Join(rs); err != nil {
		return nil, err
	}
	for i, r := range rs {
		v := r.Value
		tbl.AddRow(ks[i], v.prob, v.predicted, v.rigid, v.elastic)
		if math.Abs(v.rigid-v.predicted) > 0.06 {
			pass = false
		}
	}
	return &ExperimentResult{
		ID:    "E5",
		Title: "Section I: self-timed arrays converge to worst case",
		PaperClaim: "P(worst case on a k-cell path) = 1 − p^k → 1, so large " +
			"self-timed arrays usually operate at worst-case speed and clocking " +
			"loses nothing.",
		Finding: "Measured rigid-wave intervals match the 1 − p^k prediction " +
			"within 3%; the elastic (1-deep buffered) variant also degrades " +
			"toward the worst case as arrays grow.",
		Pass:  pass,
		Table: tbl,
	}, nil
}

// runE6: the Section VII chip — equipotential cycle grows linearly with
// string length while the pipelined cycle stays nearly flat, giving ≈68×
// at 2048 inverters, consistently across chips.
func runE6(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E6: inverter string (Section VII calibration, times in ns)",
		"n", "equipotential", "pipelined", "speedup")
	cfg := wiresim.SectionVIIConfig()
	var speedup2048 []float64
	pass := true
	ns := sizes(rc.quick, []int{128, 256, 512, 1024, 2048, 4096}, []int{256, 1024, 2048})
	type point struct {
		equi, pipe float64
		speedups   []float64 // the five-chip replication, at n=2048 only
	}
	rs := runner.Map(rc.ctx, rc.workers, len(ns), func(ctx context.Context, i int) (point, error) {
		n := ns[i]
		c := cfg
		c.N = n
		s, err := wiresim.NewStringCtx(ctx, c, stats.NewRNG(int64(n)))
		if err != nil {
			return point{}, err
		}
		pt := point{equi: s.EquipotentialCycle() * 1e9, pipe: s.MinPipelinedPeriod() * 1e9}
		if n == 2048 {
			for seed := int64(0); seed < 5; seed++ {
				chip, err := wiresim.NewStringCtx(ctx, c, stats.NewRNG(seed))
				if err != nil {
					return point{}, err
				}
				pt.speedups = append(pt.speedups, chip.Speedup())
			}
		}
		return pt, nil
	})
	if err := runner.Join(rs); err != nil {
		return nil, err
	}
	for i, r := range rs {
		v := r.Value
		tbl.AddRow(ns[i], v.equi, v.pipe, v.equi/v.pipe)
		speedup2048 = append(speedup2048, v.speedups...)
	}
	mean := stats.Mean(speedup2048)
	spread := (stats.Max(speedup2048) - stats.Min(speedup2048)) / mean
	if mean < 40 || mean > 110 || spread > 0.05 {
		pass = false
	}
	return &ExperimentResult{
		ID:    "E6",
		Title: "Section VII: pipelined vs equipotential inverter string",
		PaperClaim: "A 2048-inverter nMOS string ran equipotentially at a 34 µs " +
			"cycle but pipelined at 500 ns — 68× faster — with the same speedup " +
			"on five chips (design bias dominated random variation).",
		Finding: fmt.Sprintf("Calibrated model: mean speedup at n=2048 is %.0f× "+
			"(spread %.1f%% across 5 seeded chips); equipotential cycle grows "+
			"linearly with n while the pipelined cycle is set by the accumulated "+
			"rise/fall bias.", mean, spread*100),
		Pass:  pass,
		Table: tbl,
	}, nil
}

// runE7: Section VII's probabilistic analysis — with zero design bias,
// per-stage N(0,V) variation accumulates so that the cycle time accepted
// at a fixed yield grows as √n.
func runE7(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E7: random discrepancy accumulation (noise sd 0.05/stage)",
		"n", "mean max discrepancy", "90%-yield min period")
	chips := 80
	if rc.quick {
		chips = 25
	}
	var ns, discs []float64
	for _, n := range sizes(rc.quick, []int{64, 256, 1024, 4096}, []int{64, 256, 1024}) {
		n := n
		// The per-chip Monte Carlo is the suite's heaviest inner sweep;
		// each simulated chip is seeded independently, so the chips fan
		// out across workers without disturbing the statistics.
		type chip struct {
			disc, period float64
		}
		rs := runner.Map(rc.ctx, rc.workers, chips, func(ctx context.Context, seed int) (chip, error) {
			s, err := wiresim.NewStringCtx(ctx, wiresim.Config{
				N: n, StageDelay: 1, NoiseSD: 0.05,
			}, stats.NewRNG(int64(seed*7919+n)))
			if err != nil {
				return chip{}, err
			}
			return chip{disc: s.MaxDiscrepancy(), period: s.MinPipelinedPeriod()}, nil
		})
		if err := runner.Join(rs); err != nil {
			return nil, err
		}
		maxDisc := make([]float64, chips)
		periods := make([]float64, chips)
		for i, r := range rs {
			maxDisc[i] = r.Value.disc
			periods[i] = r.Value.period
		}
		mean := stats.Mean(maxDisc)
		yield90 := stats.QuantileAtYield(periods, 0.9)
		tbl.AddRow(n, mean, yield90)
		ns = append(ns, float64(n))
		discs = append(discs, mean)
	}
	fit, err := stats.FitPowerLaw(ns, discs)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		ID:    "E7",
		Title: "Section VII: √n growth of random discrepancy",
		PaperClaim: "The sum of n i.i.d. rise/fall discrepancies is N(0, nV), so " +
			"chips accepted at a fixed yield have cycle times growing ∝ √n.",
		Finding: fmt.Sprintf("Mean accumulated discrepancy grows as n^%.2f "+
			"(expect 0.5); the 90%%-yield minimum pipelined period grows accordingly.", fit.B),
		Pass:  fit.B > 0.3 && fit.B < 0.7,
		Table: tbl,
	}, nil
}

// runE8: the Section VI hybrid scheme — constant cycle time while a
// global summation-model clock's period grows; systolic matmul results
// remain exactly correct under hybrid synchronization.
func runE8(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E8: hybrid vs global clock on n×n meshes (δ=2, β=0.1)",
		"n", "hybrid cycle", "global period (A5)", "matmul correct")
	cfg := hybrid.Config{
		ElementSize: 4, Handshake: 0.5, LocalDistribution: 0.4,
		CellDelay: 2, HoldDelay: 0.5,
	}
	pass := true
	var globals []float64
	for _, n := range sizes(rc.quick, []int{4, 8, 16, 32}, []int{4, 8, 16}) {
		g, err := comm.Mesh(n, n)
		if err != nil {
			return nil, err
		}
		sys, err := hybrid.New(g, cfg)
		if err != nil {
			return nil, err
		}
		cycle := sys.CycleTime(50)

		// Global clock baseline: best-case A5 period σ + δ with σ from
		// the summation model on an H-tree.
		tree, err := clocktree.HTree(g)
		if err != nil {
			return nil, err
		}
		a, err := skew.AnalyzeCtx(rc.ctx, g, tree, skew.Summation{G: func(s float64) float64 { return 0.1 * s }, Beta: 0.1})
		if err != nil {
			return nil, err
		}
		global := a.MaxSkew + cfg.CellDelay

		correct := "-"
		if n <= 8 {
			ok, err := hybridMatMulCorrect(rc.ctx, n, cfg)
			if err != nil {
				return nil, err
			}
			correct = fmt.Sprintf("%v", ok)
			if !ok {
				pass = false
			}
		}
		tbl.AddRow(n, cycle, global, correct)
		if math.Abs(cycle-cfg.WaveCost()) > 1e-9 {
			pass = false
		}
		globals = append(globals, global)
	}
	if globals[len(globals)-1] < 1.5*globals[0] {
		pass = false // the global baseline must grow
	}
	return &ExperimentResult{
		ID:    "E8",
		Title: "Section VI / Fig. 8: hybrid synchronization",
		PaperClaim: "Bounded elements with handshaking local clocks make all " +
			"synchronization paths local: constant cycle time at any array size, " +
			"with cells designed as if globally clocked.",
		Finding: "Hybrid cycle time equals the (constant) wave cost at every " +
			"size while the global-clock A5 period grows with n; systolic matmul " +
			"under hybrid synchronization matches the ideal lock-step results exactly.",
		Pass:  pass,
		Table: tbl,
	}, nil
}

func hybridMatMulCorrect(ctx context.Context, n int, cfg hybrid.Config) (bool, error) {
	ctx, span := obs.Start(ctx, "systolic.matmul", obs.Int("n", int64(n)))
	defer span.End()
	rng := stats.NewRNG(int64(n))
	a := systolic.NewMatrix(n, n)
	b := systolic.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Uniform(-2, 2)
		b.Data[i] = rng.Uniform(-2, 2)
	}
	mm, err := systolic.NewMatMul(a, b)
	if err != nil {
		return false, err
	}
	sys, err := hybrid.New(mm.Machine.Graph(), cfg)
	if err != nil {
		return false, err
	}
	tr, err := sys.RunCtx(ctx, mm.Machine, mm.Cycles)
	if err != nil {
		return false, err
	}
	got, err := mm.Extract(tr)
	if err != nil {
		return false, err
	}
	want, err := a.Mul(b)
	if err != nil {
		return false, err
	}
	return got.Equal(want, 1e-6), nil
}

// runE9: assumption A5 made measurable — the bisected minimum working
// period of clocked systolic arrays equals δ plus the directed skew, and
// A5's σ + δ bounds it from above.
func runE9(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E9: minimum working period vs A5 prediction (δ=1)",
		"workload", "n", "σ (comm)", "measured", "exact prediction", "A5 bound")
	pass := true
	for _, n := range sizes(rc.quick, []int{4, 8, 16}, []int{4, 8}) {
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(i + 1)
		}
		f, err := systolic.NewFIR(weights, []float64{1, -1, 2, -2, 3})
		if err != nil {
			return nil, err
		}
		g := f.Machine.Graph()
		rng := stats.NewRNG(int64(n))
		off := array.Offsets{Cell: make([]float64, g.NumCells()), Host: rng.Uniform(0, 0.3)}
		for i := range off.Cell {
			off.Cell[i] = rng.Uniform(0, 0.4)
		}
		timing := array.Timing{CellDelay: 1, HoldDelay: 0.5}
		cycles := f.Cycles
		if cycles > 30 {
			cycles = 30
		}
		measured, err := f.Machine.MinWorkingPeriod(cycles, timing, off, 0, 20, 1e-3)
		if err != nil {
			return nil, err
		}
		sigma := f.Machine.MaxCommSkew(off)
		exact := timing.CellDelay + f.Machine.MaxDirectedSkew(off)
		bound := timing.CellDelay + sigma
		tbl.AddRow("fir", n, sigma, measured, exact, bound)
		if math.Abs(measured-exact) > 0.05 || measured > bound+0.05 {
			pass = false
		}
	}
	return &ExperimentResult{
		ID:    "E9",
		Title: "A5: minimum working clock period σ + δ",
		PaperClaim: "A clocked system may be driven with period σ + δ + τ; " +
			"below it, synchronization fails.",
		Finding: "The bisected smallest period at which the clocked FIR still " +
			"matches the ideal trace equals δ + max directed skew exactly, and " +
			"never exceeds A5's σ + δ; below it, latches capture mid-transition " +
			"garbage and outputs corrupt.",
		Pass:  pass,
		Table: tbl,
	}, nil
}

// runE10: the grid-folding support for Theorem 2 — the paper's example
// n^(2/3) × n^(1/3) grids fold to aspect ≤ 2 with no area growth.
func runE10(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E10: folding n^(2/3) x n^(1/3) grids square",
		"N", "source", "target", "dilation", "area factor")
	pass := true
	for _, exp := range sizes(rc.quick, []int{9, 12, 15, 18}, []int{9, 12}) {
		n := 1 << exp // N = 2^exp, source is 2^(exp/3) × 2^(2exp/3)
		rows := 1 << (exp / 3)
		cols := n / rows
		_, span := obs.Start(rc.ctx, "embed.fold", obs.Int("rows", int64(rows)), obs.Int("cols", int64(cols)))
		e, err := embed.FoldToSquare(rows, cols)
		if err != nil {
			span.End()
			return nil, err
		}
		m, err := embed.Measure(e)
		span.End()
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, fmt.Sprintf("%dx%d", rows, cols),
			fmt.Sprintf("%dx%d", e.DstRows, e.DstCols), m.Dilation, m.AreaFactor)
		if m.AreaFactor > 2.0+1e-9 || m.AspectRatio > 2+1e-9 {
			pass = false
		}
	}
	return &ExperimentResult{
		ID:    "E10",
		Title: "Theorem 2 support: rectangular-to-square grid folding",
		PaperClaim: "Any rectangular grid embeds in a square grid with constant " +
			"edge stretch and area (Aleliunas-Rosenberg), letting the H-tree " +
			"result cover all bounded-aspect layouts.",
		Finding: "Iterated interleaved folding reaches aspect ≤ 2 with area " +
			"factor ≤ 2; dilation grows as sqrt(aspect) rather than O(1) — a " +
			"documented weaker substitute (DESIGN.md), sufficient because the " +
			"kd-split H-tree clocks arbitrary layouts directly.",
		Pass:  pass,
		Table: tbl,
	}, nil
}

// runE11: the Section VIII tree machine — constant pipeline interval,
// O(√N) latency, O(N) registers and area.
func runE11(rc *runCtx) (*ExperimentResult, error) {
	tbl := report.NewTable("E11: pipelined tree machine (buffer spacing 1.5)",
		"levels", "N", "latency", "interval", "registers/N", "area/N")
	pass := true
	var ns, lats []float64
	for _, levels := range sizes(rc.quick, []int{4, 6, 8, 10, 12}, []int{4, 6, 8}) {
		m, err := treemachine.New(treemachine.Config{Levels: levels, BufferSpacing: 1.5})
		if err != nil {
			return nil, err
		}
		ops := make([]treemachine.Op, 100)
		for i := range ops {
			if i%3 == 0 {
				ops[i] = treemachine.Op{Kind: treemachine.Insert, Key: int64(i)}
			} else {
				ops[i] = treemachine.Op{Kind: treemachine.Query, Key: int64(i % 30)}
			}
		}
		_, st, err := m.RunCtx(rc.ctx, ops)
		if err != nil {
			return nil, err
		}
		n := float64(m.Nodes())
		tbl.AddRow(levels, m.Nodes(), st.Latency, st.Interval,
			float64(m.TotalRegisters())/n, m.LayoutArea()/n)
		if st.Interval > 1.2 {
			pass = false
		}
		ns = append(ns, n)
		lats = append(lats, float64(st.Latency))
	}
	fit, err := stats.FitPowerLaw(ns, lats)
	if err != nil {
		return nil, err
	}
	if fit.B < 0.3 || fit.B > 0.7 {
		pass = false
	}
	return &ExperimentResult{
		ID:    "E11",
		Title: "Section VIII: pipelined tree machine",
		PaperClaim: "An H-tree tree machine with pipeline registers on long " +
			"edges has O(N) area, O(√N) root-to-leaf delay, and a constant " +
			"pipeline interval.",
		Finding: fmt.Sprintf("Latency grows as N^%.2f (expect 0.5) while the "+
			"sustained interval stays ≈1 cycle; registers and layout area per "+
			"node stay bounded.", fit.B),
		Pass:  pass,
		Table: tbl,
	}, nil
}
