package vlsisync

import (
	"fmt"
	"sort"
)

// PaperAssumption documents one of the paper's numbered assumptions
// (Section II and III) together with where this repository implements or
// exercises it — so users can trace every modeling decision back to the
// text.
type PaperAssumption struct {
	ID        string
	Statement string
	// Implementation names the packages and identifiers realizing it.
	Implementation string
	// Experiments lists the experiment IDs that exercise it.
	Experiments []string
}

var paperAssumptions = map[string]PaperAssumption{
	"A1": {
		ID: "A1",
		Statement: "Intercell communications of an ideally synchronized array are a " +
			"directed graph COMM laid out in the plane; each edge carries one data " +
			"item per cycle between communicating cells.",
		Implementation: "internal/comm (Graph, CommunicatingPairs); internal/array (RunIdeal)",
		Experiments:    []string{"E1", "E3", "E8"},
	},
	"A2": {
		ID:             "A2",
		Statement:      "A cell occupies unit area.",
		Implementation: "internal/comm layouts (unit cell pitch); circle counting in internal/skew",
		Experiments:    []string{"E4"},
	},
	"A3": {
		ID:             "A3",
		Statement:      "A communication edge has unit width.",
		Implementation: "internal/skew (2πσ/β crossing bound); internal/clocktree area accounting",
		Experiments:    []string{"E4"},
	},
	"A4": {
		ID: "A4",
		Statement: "The clock is distributed by a rooted binary tree CLK laid out in " +
			"the plane; a cell can be clocked only if it is a node of CLK.",
		Implementation: "internal/clocktree (Tree, Validate enforces binary branching and coverage)",
		Experiments:    []string{"E1", "E2", "E3", "E4"},
	},
	"A5": {
		ID: "A5",
		Statement: "A clocked system may be driven with clock period σ + δ + τ (skew " +
			"plus compute/propagate delay plus distribution time).",
		Implementation: "internal/array (RunClocked, MinWorkingPeriod); internal/core (Plan.Period)",
		Experiments:    []string{"E9"},
	},
	"A6": {
		ID: "A6",
		Statement: "Equipotential distribution time τ is at least α·P, P the longest " +
			"root-to-leaf path of CLK: large equipotentially clocked arrays have " +
			"periods growing with their diameter.",
		Implementation: "internal/clocksim (EquipotentialTau); internal/wiresim (RCWire); internal/core",
		Experiments:    []string{"E6", "E15"},
	},
	"A7": {
		ID: "A7",
		Statement: "With buffers a constant distance apart, the per-segment " +
			"distribution time τ of a buffered clock tree is a constant independent " +
			"of array size (pipelined clocking).",
		Implementation: "internal/clocktree (Buffered); internal/wiresim (InverterString); internal/clocksim",
		Experiments:    []string{"E6", "E15"},
	},
	"A8": {
		ID: "A8",
		Statement: "Signal travel time along a fixed path through a buffered clock " +
			"tree is invariant over time (required for pipelined clocking).",
		Implementation: "internal/wiresim (PipelinedRun's jitterSD models its violation); internal/core (NoPipelining)",
		Experiments:    []string{"E6"},
	},
	"A9": {
		ID: "A9",
		Statement: "Difference model: skew between two nodes is bounded above by " +
			"f(d), d the difference of their path lengths from the clock root.",
		Implementation: "internal/skew (Difference); internal/clocktree (Equalize)",
		Experiments:    []string{"E1"},
	},
	"A10": {
		ID: "A10",
		Statement: "Summation model, upper bound: skew between two nodes is bounded " +
			"above by g(s), s the length of the tree path connecting them.",
		Implementation: "internal/skew (Summation.Bound); internal/clocksim (Random)",
		Experiments:    []string{"E2", "E3"},
	},
	"A11": {
		ID: "A11",
		Statement: "Summation model, lower bound: skew between two nodes can be as " +
			"large as β·s — the assumption powering the Ω(n) mesh lower bound.",
		Implementation: "internal/skew (Summation.LowerBound, MeshCertifiedLowerBound); internal/clocksim (Adversarial)",
		Experiments:    []string{"E4", "E13"},
	},
}

// Assumption returns the paper assumption with the given ID (A1–A11).
func Assumption(id string) (PaperAssumption, error) {
	a, ok := paperAssumptions[id]
	if !ok {
		return PaperAssumption{}, fmt.Errorf("vlsisync: unknown assumption %q (have A1–A11)", id)
	}
	return a, nil
}

// Assumptions11 returns all eleven paper assumptions in order.
func Assumptions11() []PaperAssumption {
	ids := make([]string, 0, len(paperAssumptions))
	for id := range paperAssumptions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// A1…A9 sort numerically, then A10, A11.
		return assumptionOrder(ids[i]) < assumptionOrder(ids[j])
	})
	out := make([]PaperAssumption, len(ids))
	for i, id := range ids {
		out[i] = paperAssumptions[id]
	}
	return out
}

func assumptionOrder(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "A%d", &n); err != nil {
		return 1 << 30
	}
	return n
}
