package vlsisync

// Differential tests for the fault-injected paths: every kernelized
// engine's faulty entry point must agree with its retained reference
// implementation at tolerance 0 under one shared injector
// configuration exercising all four fault keys (drop, delay, jitter,
// metastable). The injectors are keyed by (seed, site), so two
// identically seeded injectors draw identical fault patterns on both
// sides — any divergence, in results or in fault tallies, is a kernel
// replay bug, not randomness.

import (
	"testing"

	"repro/internal/clocksim"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/selftimed"
	"repro/internal/stats"
)

// allFaultKeys enables every injector mechanism at once.
var allFaultKeys = faults.Config{
	DropProb: 0.12, RetransmitTimeout: 2.5,
	DelayProb: 0.2, MaxDelay: 1.1,
	JitterProb: 0.25, MaxJitter: 0.4,
	MetastableProb: 0.06, MetastableStall: 0.7,
}

// injectorPair returns two identically seeded injectors, one for the
// kernel side and one for the reference side.
func injectorPair(t *testing.T, seed int64) (*faults.Injector, *faults.Injector) {
	t.Helper()
	k, err := faults.New(allFaultKeys, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := faults.New(allFaultKeys, seed)
	if err != nil {
		t.Fatal(err)
	}
	return k, r
}

func faultyMesh(t *testing.T, n int) *comm.Graph {
	t.Helper()
	g, err := comm.Mesh(n, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDifferentialJitteredClock holds clocksim's jittered fast path to
// the reference propagation: identical skew, identical arrival at
// every tree node, identical fault tallies.
func TestDifferentialJitteredClock(t *testing.T) {
	g := faultyMesh(t, 5)
	tree, err := clocktree.HTree(g)
	if err != nil {
		t.Fatal(err)
	}
	k, err := clocksim.NewKernel(g, tree)
	if err != nil {
		t.Fatal(err)
	}
	p := clocksim.Params{M: 1, Eps: 0.3}
	for seed := int64(1); seed <= 4; seed++ {
		injK, injR := injectorPair(t, seed*101)
		got, err := k.Jittered(p, stats.NewRNG(seed), injK)
		if err != nil {
			t.Fatal(err)
		}
		want, err := clocksim.ReferenceJittered(tree, p, stats.NewRNG(seed), injR)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < tree.NumNodes(); v++ {
			id := clocktree.NodeID(v)
			if got.At(id) != want.At(id) {
				t.Fatalf("seed %d node %d: kernel arrival %g != reference %g", seed, v, got.At(id), want.At(id))
			}
		}
		gs, err := got.MaxCommSkew(g)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := want.MaxCommSkew(g)
		if err != nil {
			t.Fatal(err)
		}
		if gs != ws {
			t.Fatalf("seed %d: kernel jittered skew %g != reference %g", seed, gs, ws)
		}
		if injK.Counts() != injR.Counts() {
			t.Fatalf("seed %d: kernel tallies %+v != reference %+v", seed, injK.Counts(), injR.Counts())
		}
	}
}

// TestDifferentialFaultyHandshake holds hybrid's fault-injected
// handshake protocol to the reference recurrence at tolerance 0.
func TestDifferentialFaultyHandshake(t *testing.T) {
	sys, err := hybrid.New(faultyMesh(t, 6), hybrid.Config{
		ElementSize: 3, Handshake: 0.5, LocalDistribution: 0.3,
		CellDelay: 2, HoldDelay: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		injK, injR := injectorPair(t, seed*77)
		got, err := sys.SimulateHandshakeFaulty(16, injK)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.ReferenceSimulateHandshakeFaulty(16, injR)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d waves != reference %d", seed, len(got), len(want))
		}
		for k := range got {
			for v := range got[k] {
				if got[k][v] != want[k][v] {
					t.Fatalf("seed %d wave %d element %d: kernel %g != reference %g",
						seed, k, v, got[k][v], want[k][v])
				}
			}
		}
		if injK.Counts() != injR.Counts() {
			t.Fatalf("seed %d: kernel tallies %+v != reference %+v", seed, injK.Counts(), injR.Counts())
		}
	}
}

// TestDifferentialFaultyElastic holds selftimed's fault-injected
// elastic run to the reference event propagation at tolerance 0.
func TestDifferentialFaultyElastic(t *testing.T) {
	g := faultyMesh(t, 5)
	d := selftimed.Delays{Fast: 1, Worst: 3, PWorst: 0.3, Handshake: 0.25}
	for _, depth := range []int{1, 2, 4} {
		for seed := int64(1); seed <= 4; seed++ {
			injK, injR := injectorPair(t, seed*31)
			got, err := selftimed.RunElasticFaulty(g, 16, d, depth, stats.NewRNG(seed), injK)
			if err != nil {
				t.Fatal(err)
			}
			want, err := selftimed.ReferenceRunElasticFaulty(g, 16, d, depth, stats.NewRNG(seed), injR)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("depth %d seed %d: kernel %+v != reference %+v", depth, seed, got, want)
			}
			if injK.Counts() != injR.Counts() {
				t.Fatalf("depth %d seed %d: kernel tallies %+v != reference %+v",
					depth, seed, injK.Counts(), injR.Counts())
			}
		}
	}
}
