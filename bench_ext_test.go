package vlsisync

// Benchmarks for the extension experiments (E12–E14) and the additional
// systolic workloads.

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/array"
	"repro/internal/clocksim"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/metastable"
	"repro/internal/skew"
	"repro/internal/stats"
	"repro/internal/systolic"
	"repro/internal/wiresim"
)

// BenchmarkConcl_TreeDataPathClocking (E12): clock along the data paths
// of a 10-level tree machine COMM graph; metrics: worst pair skew and
// the skew-to-wire ratio (constant β).
func BenchmarkConcl_TreeDataPathClocking(b *testing.B) {
	g, err := comm.CompleteBinaryTree(10)
	if err != nil {
		b.Fatal(err)
	}
	var maxSkew, ratio float64
	for i := 0; i < b.N; i++ {
		tree, err := clocktree.AlongCommTree(g)
		if err != nil {
			b.Fatal(err)
		}
		a, err := skew.Analyze(g, tree, skew.Summation{G: func(s float64) float64 { return 0.1 * s }, Beta: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		maxSkew = a.MaxSkew
		ratio = a.MaxSkew / g.MaxEdgeLength()
	}
	b.ReportMetric(maxSkew, "skew")
	b.ReportMetric(ratio, "skew_per_wire")
}

// BenchmarkClockSim_SpineFIREndToEnd (E13): the full pipeline — random
// clock propagation through a 32-cell spine, offsets, clocked FIR run.
func BenchmarkClockSim_SpineFIREndToEnd(b *testing.B) {
	weights := make([]float64, 32)
	for i := range weights {
		weights[i] = float64(i % 4)
	}
	fir, err := systolic.NewFIR(weights, []float64{1, 2, 3})
	if err != nil {
		b.Fatal(err)
	}
	g := fir.Machine.Graph()
	tree, err := clocktree.Spine(g)
	if err != nil {
		b.Fatal(err)
	}
	p := clocksim.Params{M: 1, Eps: 0.2}
	golden := fir.Golden(fir.Cycles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr, err := clocksim.Random(tree, p, stats.NewRNG(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		off, err := arr.Offsets(g)
		if err != nil {
			b.Fatal(err)
		}
		delta := 1 + (p.M+p.Eps)*1.05
		got, err := fir.Machine.RunClocked(fir.Cycles, array.Timing{
			Period:    delta + fir.Machine.MaxDirectedSkew(off) + 0.1,
			CellDelay: delta, HoldDelay: delta,
		}, off)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(golden, 1e-9) {
			b.Fatal("spine-clocked FIR diverged")
		}
	}
}

// BenchmarkSecVI_MetastabilityMTBF (E14): synchronizer MTBF accounting
// for a 256-crossing system; metric: resolution time needed for MTBF 1e9.
func BenchmarkSecVI_MetastabilityMTBF(b *testing.B) {
	s := metastable.Synchronizer{Tau: 1, Window: 0.01, ClockFreq: 100, DataRate: 10}
	var resolve float64
	for i := 0; i < b.N; i++ {
		tr, err := s.ResolveTimeForMTBF(1e9, 256)
		if err != nil {
			b.Fatal(err)
		}
		resolve = tr
	}
	b.ReportMetric(resolve, "resolve_time")
}

// BenchmarkWorkload_Sorter: 32-key odd-even transposition sort, ideal
// lock-step execution with unload.
func BenchmarkWorkload_Sorter(b *testing.B) {
	rng := stats.NewRNG(5)
	keys := make([]float64, 32)
	for i := range keys {
		keys[i] = float64(rng.Intn(1000))
	}
	s, err := systolic.NewSorter(keys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := s.Machine.RunIdeal(s.Cycles)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Sorted(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkload_Jacobi: 16×16 relaxation, 64 sweeps, ideal execution.
func BenchmarkWorkload_Jacobi(b *testing.B) {
	west := make([]float64, 16)
	south := make([]float64, 16)
	for i := range west {
		west[i] = 1
	}
	j, err := systolic.NewJacobi(16, 16, west, south)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Machine.RunIdeal(64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLadderClock: ring ladder construction and skew analysis.
func BenchmarkLadderClock(b *testing.B) {
	g, err := comm.Ring(128)
	if err != nil {
		b.Fatal(err)
	}
	var maxSkew float64
	for i := 0; i < b.N; i++ {
		tree, err := clocktree.Ladder(g)
		if err != nil {
			b.Fatal(err)
		}
		a, err := skew.Analyze(g, tree, skew.Summation{Beta: 1})
		if err != nil {
			b.Fatal(err)
		}
		maxSkew = a.MaxSkew
	}
	b.ReportMetric(maxSkew, "skew")
}

// BenchmarkSecVII_ClockingRegimes (E15): the three clock-drive regimes on
// a 32×32 mesh H-tree; metrics: unbuffered RC settle, buffered
// equipotential traversal, and pipelined period.
func BenchmarkSecVII_ClockingRegimes(b *testing.B) {
	g, err := comm.Mesh(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	rc := wiresim.RCWire{RPerUnit: 1, CPerUnit: 1, BufferDelay: 2}
	spacing, err := rc.OptimalSpacing()
	if err != nil {
		b.Fatal(err)
	}
	params := clocksim.Params{M: 1, Eps: 0.1, BufferDelay: rc.BufferDelay,
		MinSeparation: 2 * rc.BufferDelay, RiseFallBias: 0.01}
	var unbuffered, buffered, pipelined float64
	for i := 0; i < b.N; i++ {
		tree, err := clocktree.HTree(g)
		if err != nil {
			b.Fatal(err)
		}
		buf, err := clocktree.Buffered(tree, spacing)
		if err != nil {
			b.Fatal(err)
		}
		p := tree.MaxRootDist()
		unbuffered, _ = rc.UnbufferedSettle(p)
		buffered, _ = rc.BufferedDelay(p, spacing)
		pipelined = clocksim.MinPipelinedPeriod(buf, params)
	}
	b.ReportMetric(unbuffered, "unbuffered")
	b.ReportMetric(buffered, "buffered")
	b.ReportMetric(pipelined, "pipelined")
}

// BenchmarkWorkload_EditDistance: 8×8 systolic Levenshtein DP with
// diagonal relays, ideal execution.
func BenchmarkWorkload_EditDistance(b *testing.B) {
	e, err := systolic.NewEditDistance("abcdefgh", "badcfehg")
	if err != nil {
		b.Fatal(err)
	}
	want := e.Golden()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := e.Machine.RunIdeal(e.Cycles)
		if err != nil {
			b.Fatal(err)
		}
		got, err := e.Distance(tr)
		if err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatalf("distance %d, want %d", got, want)
		}
	}
}

// BenchmarkWorkload_HexBandMatMul: tridiagonal 32×32 band product on the
// 3×3 hexagonal array, ideal execution with extraction.
func BenchmarkWorkload_HexBandMatMul(b *testing.B) {
	rng := stats.NewRNG(4)
	a := systolic.NewBandMatrix(32, 1, 1, func(i, j int) float64 { return rng.Uniform(-1, 1) })
	bb := systolic.NewBandMatrix(32, 1, 1, func(i, j int) float64 { return rng.Uniform(-1, 1) })
	bm, err := systolic.NewBandMatMul(a, bb, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	want, err := a.Mul(bb)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := bm.Machine.RunIdeal(bm.Cycles)
		if err != nil {
			b.Fatal(err)
		}
		got, err := bm.Extract(tr)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			b.Fatal("band product diverged")
		}
	}
}

// BenchmarkWorkload_PriorityQueue: 64 mixed operations on a 16-cell
// systolic priority queue, verified against the golden queue.
func BenchmarkWorkload_PriorityQueue(b *testing.B) {
	rng := stats.NewRNG(11)
	var ops []systolic.PQOp
	live := 0
	for i := 0; i < 64; i++ {
		if live < 16 && (live == 0 || rng.Bernoulli(0.6)) {
			ops = append(ops, systolic.PQOp{Kind: systolic.PQInsert, Value: float64(rng.Intn(100))})
			live++
		} else {
			ops = append(ops, systolic.PQOp{Kind: systolic.PQExtractMin})
			live--
		}
	}
	pq, err := systolic.NewPQ(16, ops)
	if err != nil {
		b.Fatal(err)
	}
	want := pq.Golden()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := pq.Machine.RunIdeal(pq.Cycles)
		if err != nil {
			b.Fatal(err)
		}
		got, err := pq.Results(tr)
		if err != nil {
			b.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				b.Fatalf("answer %d: %g != %g", j, got[j], want[j])
			}
		}
	}
}

// BenchmarkSuiteSequential runs the full quick suite on one worker —
// the baseline for the parallel runner's speedup.
func BenchmarkSuiteSequential(b *testing.B) {
	benchmarkSuite(b, 1)
}

// BenchmarkSuiteParallel runs the full quick suite on one worker per
// CPU. Output is byte-identical to the sequential run (asserted in
// TestParallelMatchesSequential); the benchmark measures the wall-time
// win of fanning out experiments and their inner sweeps.
func BenchmarkSuiteParallel(b *testing.B) {
	benchmarkSuite(b, runtime.GOMAXPROCS(0))
}

func benchmarkSuite(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		results, _, err := RunExperiments(context.Background(), RunOptions{Quick: true, Parallel: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(ExperimentIDs()) {
			b.Fatalf("completed %d of %d", len(results), len(ExperimentIDs()))
		}
	}
}
