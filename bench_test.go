package vlsisync

// The benchmark harness regenerates every figure/claim of the paper's
// evaluation (DESIGN.md §4 maps experiment IDs to paper sources). Each
// benchmark runs the experiment's kernel under the Go benchmark driver
// and reports the reproduced quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same series the paper's claims are about. Shape assertions
// (who wins, growth exponents) live in the test suite; benchmarks report
// the raw numbers.

import (
	"fmt"
	"testing"

	"repro/internal/array"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/selftimed"
	"repro/internal/skew"
	"repro/internal/stats"
	"repro/internal/systolic"
	"repro/internal/treemachine"
	"repro/internal/wiresim"
)

// BenchmarkFig3_HTreeDifferenceModel (E1): building and analyzing the
// equalized H-tree on a 16×16 mesh; metric: max difference-model skew
// (paper: bounded ⇒ 0 after equalization).
func BenchmarkFig3_HTreeDifferenceModel(b *testing.B) {
	g, err := comm.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	var maxSkew float64
	for i := 0; i < b.N; i++ {
		tree, err := clocktree.HTree(g)
		if err != nil {
			b.Fatal(err)
		}
		tree.Equalize()
		a, err := skew.Analyze(g, tree, skew.Difference{})
		if err != nil {
			b.Fatal(err)
		}
		maxSkew = a.MaxSkew
	}
	b.ReportMetric(maxSkew, "skew")
}

// BenchmarkFig3a_HTreeSummationFailure (E2): the same H-tree on a
// 256-cell linear array under the summation model; metric: max skew
// (paper: grows with n — here ≈ n).
func BenchmarkFig3a_HTreeSummationFailure(b *testing.B) {
	g, err := comm.Linear(256)
	if err != nil {
		b.Fatal(err)
	}
	var maxSkew float64
	for i := 0; i < b.N; i++ {
		tree, err := clocktree.HTree(g)
		if err != nil {
			b.Fatal(err)
		}
		a, err := skew.Analyze(g, tree, skew.Summation{Beta: 1})
		if err != nil {
			b.Fatal(err)
		}
		maxSkew = a.MaxSkew
	}
	b.ReportMetric(maxSkew, "skew")
}

// BenchmarkFig4to6_SpineClock1D (E3): spine-clocked 256-cell linear
// array; metric: max summation-model skew (paper: constant = 1 pitch).
func BenchmarkFig4to6_SpineClock1D(b *testing.B) {
	g, err := comm.Linear(256)
	if err != nil {
		b.Fatal(err)
	}
	var maxSkew float64
	for i := 0; i < b.N; i++ {
		tree, err := clocktree.Spine(g)
		if err != nil {
			b.Fatal(err)
		}
		a, err := skew.Analyze(g, tree, skew.Summation{Beta: 1})
		if err != nil {
			b.Fatal(err)
		}
		maxSkew = a.MaxSkew
	}
	b.ReportMetric(maxSkew, "skew")
}

// BenchmarkFig7_MeshSkewLowerBound (E4): the Section V-B certified bound
// on a 16×16 mesh with an H-tree; metrics: certified Ω(n) bound and the
// tree's guaranteed skew.
func BenchmarkFig7_MeshSkewLowerBound(b *testing.B) {
	g, err := comm.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := clocktree.HTree(g)
	if err != nil {
		b.Fatal(err)
	}
	var certified, guaranteed float64
	for i := 0; i < b.N; i++ {
		cert, err := skew.MeshCertifiedLowerBound(g, tree, 1)
		if err != nil {
			b.Fatal(err)
		}
		certified = cert.Bound
		guaranteed = skew.GuaranteedMinSkew(g, tree, skew.Summation{Beta: 1})
	}
	b.ReportMetric(certified, "certified")
	b.ReportMetric(guaranteed, "guaranteed")
}

// BenchmarkSecI_SelfTimedWorstCase (E5): 64-cell self-timed array with
// P(worst)=0.1; metrics: rigid-wave interval vs the 1−p^k prediction.
func BenchmarkSecI_SelfTimedWorstCase(b *testing.B) {
	g, err := comm.Linear(64)
	if err != nil {
		b.Fatal(err)
	}
	d := selftimed.Delays{Fast: 1, Worst: 2, PWorst: 0.1}
	var interval float64
	for i := 0; i < b.N; i++ {
		r, err := selftimed.RunRigid(g, 500, d, stats.NewRNG(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		interval = r.MeanInterval
	}
	b.ReportMetric(interval, "interval")
	b.ReportMetric(1+selftimed.WorstCaseProb(0.9, 64), "predicted")
}

// BenchmarkSecVII_InverterChain (E6): the 2048-inverter chip; metrics:
// equipotential and pipelined cycle times (ns) and the speedup (paper:
// 34 µs vs 500 ns, 68×).
func BenchmarkSecVII_InverterChain(b *testing.B) {
	cfg := wiresim.SectionVIIConfig()
	var equi, pipe float64
	for i := 0; i < b.N; i++ {
		s, err := wiresim.NewString(cfg, stats.NewRNG(1))
		if err != nil {
			b.Fatal(err)
		}
		equi = s.EquipotentialCycle()
		pipe = s.MinPipelinedPeriod()
	}
	b.ReportMetric(equi*1e9, "equi_ns")
	b.ReportMetric(pipe*1e9, "pipe_ns")
	b.ReportMetric(equi/pipe, "speedup")
}

// BenchmarkSecVII_PipelinedEventSim (E6 support): full discrete-event
// simulation of 20 pipelined cycles through 2048 stages.
func BenchmarkSecVII_PipelinedEventSim(b *testing.B) {
	s, err := wiresim.NewString(wiresim.SectionVIIConfig(), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	period := s.MinPipelinedPeriod() * 1.01
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PipelinedRun(period, 20, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecVII_SqrtNYield (E7): Monte-Carlo discrepancy accumulation
// over 1024 stages; metric: mean max discrepancy (grows as √n).
func BenchmarkSecVII_SqrtNYield(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		var sum float64
		const chips = 20
		for seed := int64(0); seed < chips; seed++ {
			s, err := wiresim.NewString(wiresim.Config{N: 1024, StageDelay: 1, NoiseSD: 0.05},
				stats.NewRNG(seed))
			if err != nil {
				b.Fatal(err)
			}
			sum += s.MaxDiscrepancy()
		}
		mean = sum / chips
	}
	b.ReportMetric(mean, "discrepancy")
}

// BenchmarkFig8_HybridVsGlobal (E8): hybrid synchronization of a 16×16
// mesh; metrics: hybrid cycle (constant) vs the global summation-model
// A5 period (grows with n).
func BenchmarkFig8_HybridVsGlobal(b *testing.B) {
	g, err := comm.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	cfg := hybrid.Config{ElementSize: 4, Handshake: 0.5, LocalDistribution: 0.4,
		CellDelay: 2, HoldDelay: 0.5}
	var cycle, global float64
	for i := 0; i < b.N; i++ {
		sys, err := hybrid.New(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycle = sys.CycleTime(50)
		tree, err := clocktree.HTree(g)
		if err != nil {
			b.Fatal(err)
		}
		a, err := skew.Analyze(g, tree, skew.Summation{G: func(s float64) float64 { return 0.1 * s }, Beta: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		global = a.MaxSkew + cfg.CellDelay
	}
	b.ReportMetric(cycle, "hybrid_cycle")
	b.ReportMetric(global, "global_period")
}

// BenchmarkFig8_HybridMatMul (E8 support): end-to-end systolic 8×8
// matmul under hybrid synchronization.
func BenchmarkFig8_HybridMatMul(b *testing.B) {
	rng := stats.NewRNG(7)
	a := systolic.NewMatrix(8, 8)
	bb := systolic.NewMatrix(8, 8)
	for i := range a.Data {
		a.Data[i] = rng.Uniform(-1, 1)
		bb.Data[i] = rng.Uniform(-1, 1)
	}
	mm, err := systolic.NewMatMul(a, bb)
	if err != nil {
		b.Fatal(err)
	}
	cfg := hybrid.Config{ElementSize: 4, Handshake: 0.5, LocalDistribution: 0.4,
		CellDelay: 2, HoldDelay: 0.5}
	sys, err := hybrid.New(mm.Machine.Graph(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(mm.Machine, mm.Cycles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA5_MinWorkingPeriod (E9): bisecting the minimum working clock
// period of a skewed 8-tap FIR; metrics: measured threshold vs A5's σ+δ.
func BenchmarkA5_MinWorkingPeriod(b *testing.B) {
	f, err := systolic.NewFIR([]float64{1, 2, 3, 4, 5, 6, 7, 8}, []float64{1, -1, 2, -2})
	if err != nil {
		b.Fatal(err)
	}
	g := f.Machine.Graph()
	rng := stats.NewRNG(3)
	off := array.Offsets{Cell: make([]float64, g.NumCells()), Host: 0.1, HostRead: 0.1}
	for i := range off.Cell {
		off.Cell[i] = rng.Uniform(0, 0.4)
	}
	timing := array.Timing{CellDelay: 1, HoldDelay: 0.5}
	var measured float64
	for i := 0; i < b.N; i++ {
		p, err := f.Machine.MinWorkingPeriod(24, timing, off, 0, 10, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		measured = p
	}
	b.ReportMetric(measured, "measured")
	b.ReportMetric(timing.CellDelay+f.Machine.MaxCommSkew(off), "a5_bound")
}

// BenchmarkThm2_GridEmbedding (E10): folding a 16×1024 grid square;
// reported via the experiment table (dilation, area factor).
func BenchmarkThm2_GridEmbedding(b *testing.B) {
	var dilation float64
	for i := 0; i < b.N; i++ {
		r, err := RunExperiment("E10", true)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Pass {
			b.Fatal("E10 failed")
		}
		dilation = 1
	}
	b.ReportMetric(dilation, "pass")
}

// BenchmarkSecVIII_TreeMachine (E11): 512-leaf pipelined tree machine
// processing 200 commands; metrics: latency (O(√N)) and sustained
// interval (constant ≈ 1).
func BenchmarkSecVIII_TreeMachine(b *testing.B) {
	m, err := treemachine.New(treemachine.Config{Levels: 10, BufferSpacing: 1.5})
	if err != nil {
		b.Fatal(err)
	}
	ops := make([]treemachine.Op, 200)
	for i := range ops {
		if i%2 == 0 {
			ops[i] = treemachine.Op{Kind: treemachine.Insert, Key: int64(i)}
		} else {
			ops[i] = treemachine.Op{Kind: treemachine.Query, Key: int64(i - 1)}
		}
	}
	var latency, interval float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := m.Run(ops)
		if err != nil {
			b.Fatal(err)
		}
		latency = float64(st.Latency)
		interval = st.Interval
	}
	b.ReportMetric(latency, "latency")
	b.ReportMetric(interval, "interval")
}

// BenchmarkPlanner: the core decision procedure across the three regimes.
func BenchmarkPlanner(b *testing.B) {
	g, err := comm.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	a := core.Assumptions{Model: core.SummationModel, M: 1, Eps: 0.1, Delta: 2, BufferSpacing: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlan(g, a); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches (DESIGN.md §5).

// BenchmarkAblation_BufferSpacing: buffer pitch vs inserted buffer count
// on a 16×16 H-tree (A7's τ-vs-area tradeoff).
func BenchmarkAblation_BufferSpacing(b *testing.B) {
	g, err := comm.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := clocktree.HTree(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, spacing := range []float64{0.5, 1, 2, 4} {
		spacing := spacing
		b.Run(formatFloat(spacing), func(b *testing.B) {
			var buffers int
			for i := 0; i < b.N; i++ {
				buf, err := clocktree.Buffered(tree, spacing)
				if err != nil {
					b.Fatal(err)
				}
				buffers = buf.BufferCount()
			}
			b.ReportMetric(float64(buffers), "buffers")
		})
	}
}

// BenchmarkAblation_TreeCandidates: which tree family minimizes
// summation-model skew on a mesh (none escapes Ω(n), but constants vary).
func BenchmarkAblation_TreeCandidates(b *testing.B) {
	g, err := comm.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range skew.StandardFactories(2, 42) {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			var guaranteed float64
			for i := 0; i < b.N; i++ {
				tree, err := f.Build(g)
				if err != nil {
					b.Fatal(err)
				}
				guaranteed = skew.GuaranteedMinSkew(g, tree, skew.Summation{Beta: 1})
			}
			b.ReportMetric(guaranteed, "skew")
		})
	}
}

// BenchmarkAblation_ElementSize: hybrid element size vs cycle time and
// element count (handshake overhead vs locality).
func BenchmarkAblation_ElementSize(b *testing.B) {
	g, err := comm.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []float64{2, 4, 8} {
		size := size
		b.Run(formatFloat(size), func(b *testing.B) {
			cfg := hybrid.Config{ElementSize: size, Handshake: 0.5,
				LocalDistribution: 0.1 * size, CellDelay: 2, HoldDelay: 0.5}
			var cycle float64
			var elements int
			for i := 0; i < b.N; i++ {
				sys, err := hybrid.New(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycle = sys.CycleTime(20)
				elements = sys.NumElements()
			}
			b.ReportMetric(cycle, "cycle")
			b.ReportMetric(float64(elements), "elements")
		})
	}
}

func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
