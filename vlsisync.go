// Package vlsisync is a library for synchronizing large VLSI processor
// arrays, reproducing Fisher and Kung's ISCA 1983 paper of the same name.
// It provides:
//
//   - communication-graph topologies with planar layouts (linear, ring,
//     mesh, hexagonal, torus, tree) and layout transforms (folding,
//     combs);
//   - clock-tree constructions (H-tree, spine, ladder, serpentine,
//     random) with buffering, equalization, and distance queries;
//   - the paper's two clock-skew models (difference and summation), exact
//     worst-case analysis, Monte-Carlo simulation, and the mechanized
//     Section V-B Ω(n) lower bound;
//   - execution machinery: ideal lock-step, clocked-with-skew (faithful
//     setup/hold corruption), self-timed, and hybrid synchronization;
//   - systolic workloads (FIR, Horner, matrix multiplication) with golden
//     references;
//   - the Section VII pipelined-clocking inverter-string experiment; and
//   - a planner (Plan) that selects the paper's prescribed scheme from
//     physical assumptions.
//
// The experiment suite (RunExperiment, RunAllExperiments) regenerates
// every quantitative claim in the paper; see EXPERIMENTS.md.
package vlsisync

import (
	"context"

	"repro/internal/array"
	"repro/internal/clocksim"
	"repro/internal/clocktree"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/report"
	"repro/internal/skew"
	"repro/internal/stats"
	"repro/internal/systolic"
	"repro/internal/treemachine"
	"repro/internal/viz"
	"repro/internal/wiresim"
)

// Core model types, re-exported for users of the public API.
type (
	// Array is a processor array's communication graph (COMM, A1) laid
	// out in the plane.
	Array = comm.Graph
	// CellID identifies a cell of an Array.
	CellID = comm.CellID
	// ClockTree is a rooted binary clock distribution tree (CLK, A4).
	ClockTree = clocktree.Tree
	// SkewModel bounds clock skew from clock-tree distances (Section III).
	SkewModel = skew.Model
	// SkewAnalysis is a worst-case skew evaluation over an array.
	SkewAnalysis = skew.Analysis
	// Machine is an executable processor array.
	Machine = array.Machine
	// Trace is a host-visible run record.
	Trace = array.Trace
	// Plan is the planner's synchronization prescription.
	Plan = core.Plan
	// Assumptions are the planner's physical inputs.
	Assumptions = core.Assumptions
	// HybridSystem is a Section VI element partition.
	HybridSystem = hybrid.System
	// InverterString is the Section VII pipelined-clocking substrate.
	InverterString = wiresim.InverterString
	// TreeMachine is the Section VIII pipelined tree machine.
	TreeMachine = treemachine.Machine
	// Table is a renderable result table.
	Table = report.Table
	// RunMetric is one experiment's wall-time/sweep/pass record from a
	// parallel suite run.
	RunMetric = report.RunMetric
	// RNG is the deterministic random source used everywhere.
	RNG = stats.RNG
)

// MetricsTable renders per-experiment run metrics as a table.
var MetricsTable = report.MetricsTable

// Skew model constructors.
type (
	// DifferenceModel is assumption A9's skew model.
	DifferenceModel = skew.Difference
	// SummationModel is assumptions A10/A11's skew model.
	SummationModel = skew.Summation
	// LinearModel is the physically derived σ = M·d + Eps·s model.
	LinearModel = skew.Linear
)

// Planner model kinds.
const (
	ModelDifference   = core.DifferenceModel
	ModelSummation    = core.SummationModel
	ModelNoPipelining = core.NoPipelining
)

// Topology constructors.
var (
	// LinearArray returns an n-cell one-dimensional array (Fig. 4(a)).
	LinearArray = comm.Linear
	// RingArray returns an n-cell ring in a hairpin layout.
	RingArray = comm.Ring
	// MeshArray returns an r×c mesh (Fig. 3(b)).
	MeshArray = comm.Mesh
	// HexArray returns a hexagonal array (Fig. 3(c)).
	HexArray = comm.Hex
	// TorusArray returns an r×c torus.
	TorusArray = comm.Torus
	// TreeArray returns a complete binary tree in an H-tree layout.
	TreeArray = comm.CompleteBinaryTree
	// FoldLinear re-lays a linear array as Fig. 5's folded layout.
	FoldLinear = comm.FoldLinear
	// CombLinear re-lays a linear array as Fig. 6's comb layout.
	CombLinear = comm.CombLinear
)

// Clock tree constructors.
var (
	// HTreeClock builds the Fig. 3 H-tree over any layout.
	HTreeClock = clocktree.HTree
	// SpineClock runs the clock along a one-dimensional array (Fig. 4).
	SpineClock = clocktree.Spine
	// LadderClock clocks hairpin ring layouts with constant skew.
	LadderClock = clocktree.Ladder
	// SerpentineClock chains a 2D grid in boustrophedon order.
	SerpentineClock = clocktree.Serpentine
	// BufferedClock inserts A7 buffers every spacing units of wire.
	BufferedClock = clocktree.Buffered
)

// AnalyzeSkew evaluates a skew model over every communicating pair.
func AnalyzeSkew(g *Array, tree *ClockTree, model SkewModel) (SkewAnalysis, error) {
	return skew.Analyze(g, tree, model)
}

// PlanSynchronization selects the paper's prescribed scheme for g.
func PlanSynchronization(g *Array, a Assumptions) (*Plan, error) {
	return core.NewPlan(g, a)
}

// PlanSynchronizationCtx is PlanSynchronization with context
// propagation: a tracer carried by ctx (obs.WithTracer) records the
// planner's stage spans.
func PlanSynchronizationCtx(ctx context.Context, g *Array, a Assumptions) (*Plan, error) {
	return core.NewPlanCtx(ctx, g, a)
}

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return stats.NewRNG(seed) }

// NewFIR builds the systolic FIR filter workload.
var NewFIR = systolic.NewFIR

// NewPoly builds the systolic Horner evaluator workload.
var NewPoly = systolic.NewPoly

// NewMatMul builds the systolic matrix multiplier workload.
var NewMatMul = systolic.NewMatMul

// NewSorter builds the odd-even transposition sorter workload.
var NewSorter = systolic.NewSorter

// NewJacobi builds the mesh relaxation workload.
var NewJacobi = systolic.NewJacobi

// NewMatVec builds the stationary-vector matrix–vector workload.
var NewMatVec = systolic.NewMatVec

// NewEditDistance builds the systolic dynamic-programming workload
// (Levenshtein distance with relayed diagonal dependencies).
var NewEditDistance = systolic.NewEditDistance

// NewBandMatMul builds the hexagonal-array band matrix multiplier — the
// workload Fig. 3(c)'s hexagonal arrays were designed for.
var NewBandMatMul = systolic.NewBandMatMul

// NewBandMatrix builds a band matrix for NewBandMatMul.
var NewBandMatrix = systolic.NewBandMatrix

// NewPQ builds the systolic priority queue workload (one operation per
// two cycles, constant-time extract-min).
var NewPQ = systolic.NewPQ

// NewInverterString builds a Section VII inverter string.
var NewInverterString = wiresim.NewString

// SectionVIIChip returns the configuration calibrated to the paper's
// 2048-inverter test chip.
var SectionVIIChip = wiresim.SectionVIIConfig

// NewTreeMachine builds a Section VIII pipelined tree machine.
var NewTreeMachine = treemachine.New

// NewHybrid partitions an array into Section VI elements.
var NewHybrid = hybrid.New

// Clock propagation simulation (internal/clocksim re-exports): simulate
// clock event arrival times through a tree and convert them into array
// clock offsets.
type (
	// ClockParams are the electrical parameters of clock distribution.
	ClockParams = clocksim.Params
	// ClockArrivals are simulated per-node clock arrival times.
	ClockArrivals = clocksim.Arrivals
)

// Clock propagation regimes.
var (
	// NominalClock propagates with exact per-unit delay M.
	NominalClock = clocksim.Nominal
	// RandomClock propagates with per-edge delays in U[M−Eps, M+Eps].
	RandomClock = clocksim.Random
	// AdversarialClock realizes A11's ε·s lower bound for a chosen pair.
	AdversarialClock = clocksim.Adversarial
)

// RenderLayout writes an SVG of a graph and (optionally) its clock tree.
var RenderLayout = viz.RenderGraphWithClock

// RenderHybridLayout writes an SVG of a hybrid element partition.
var RenderHybridLayout = viz.RenderHybrid
