package vlsisync

import (
	"fmt"
	"strings"
	"testing"
)

func TestAssumptionLookup(t *testing.T) {
	a, err := Assumption("A5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Statement, "σ + δ + τ") {
		t.Errorf("A5 statement = %q", a.Statement)
	}
	if !strings.Contains(a.Implementation, "MinWorkingPeriod") {
		t.Errorf("A5 implementation = %q", a.Implementation)
	}
	if _, err := Assumption("A99"); err == nil {
		t.Error("unknown assumption accepted")
	}
}

func TestAssumptions11CompleteAndOrdered(t *testing.T) {
	all := Assumptions11()
	if len(all) != 11 {
		t.Fatalf("count = %d, want 11", len(all))
	}
	for i, a := range all {
		if want := fmt.Sprintf("A%d", i+1); a.ID != want {
			t.Errorf("position %d holds %s, want %s", i, a.ID, want)
		}
		if a.Statement == "" || a.Implementation == "" {
			t.Errorf("%s incomplete", a.ID)
		}
	}
}

// ExperimentsReferencedByAssumptionsExist: every experiment an assumption
// cites must be a real experiment ID.
func TestAssumptionExperimentsExist(t *testing.T) {
	valid := make(map[string]bool)
	for _, id := range ExperimentIDs() {
		valid[id] = true
	}
	for _, a := range Assumptions11() {
		for _, e := range a.Experiments {
			if !valid[e] {
				t.Errorf("%s cites unknown experiment %s", a.ID, e)
			}
		}
	}
}
