#!/usr/bin/env bash
# cluster_bench.sh regenerates BENCH_cluster.json: a 3-node syncd
# cluster against a single node on the kernel-heavy analyze mix, plus
# the slow-peer hedging scenario. See EXPERIMENTS.md ("Cluster
# benchmark") for the methodology and the gates the committed file is
# held to.
#
# The kernel-heavy scenarios run with -variants 24 (twenty mesh sides,
# forty distinct skew kernels counting both trees) against -cache 12
# and -kernel-cache 24: one node holds half the result working set and
# recomputes the other half — at large mesh sides a recompute is tens
# of milliseconds even with a warm kernel — while three nodes with
# consistent-hash routing hold every result at its ring owner, serve
# repeats as ~1ms cache hits (local or one cheap forward hop), and
# build each of the forty kernels exactly once cluster-wide.
set -euo pipefail
cd "$(dirname "$0")/.."

QPS=${QPS:-120}
DUR=${DUR:-15s}
HEDGE_QPS=${HEDGE_QPS:-20}
HEDGE_DUR=${HEDGE_DUR:-20s}
KCACHE=24
RCACHE=12
VARIANTS=24
OUT=${OUT:-BENCH_cluster.json}

SYNCD=$(mktemp -d)/syncd
SYNCLOAD=$(mktemp -d)/syncload
go build -o "$SYNCD" ./cmd/syncd
go build -o "$SYNCLOAD" ./cmd/syncload

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# boot <log> <flags...> — start a node, echo nothing; the caller reads
# the bound URL from the log with waiturl.
boot() {
  local log=$1; shift
  "$SYNCD" -quiet -cache $RCACHE -kernel-cache $KCACHE "$@" >"$log" 2>/dev/null &
  PIDS+=($!)
}
waiturl() {
  local log=$1
  for _ in $(seq 1 100); do grep -q 'listening on' "$log" 2>/dev/null && break; sleep 0.1; done
  sed -n 's/^listening on //p' "$log"
}
stopall() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  PIDS=()
}

echo "== scenario 1: single node, kernel-heavy analyze mix" >&2
boot "$WORK/single.log" -addr 127.0.0.1:0
BASE=$(waiturl "$WORK/single.log")
"$SYNCLOAD" -url "$BASE" -qps "$QPS" -duration "$DUR" -mix analyze=1 \
  -variants $VARIANTS -seed 1 -json >"$WORK/single.json"
stopall

echo "== scenario 2: 3-node cluster, same offered load round-robined" >&2
P1=18081 P2=18082 P3=18083
U1="http://127.0.0.1:$P1" U2="http://127.0.0.1:$P2" U3="http://127.0.0.1:$P3"
boot "$WORK/c1.log" -addr 127.0.0.1:$P1 -self "$U1" -peers "$U2,$U3" -hedge-after -1s
boot "$WORK/c2.log" -addr 127.0.0.1:$P2 -self "$U2" -peers "$U1,$U3" -hedge-after -1s
boot "$WORK/c3.log" -addr 127.0.0.1:$P3 -self "$U3" -peers "$U1,$U2" -hedge-after -1s
waiturl "$WORK/c1.log" >/dev/null; waiturl "$WORK/c2.log" >/dev/null; waiturl "$WORK/c3.log" >/dev/null
"$SYNCLOAD" -cluster "$U1,$U2,$U3" -qps "$QPS" -duration "$DUR" -mix analyze=1 \
  -variants $VARIANTS -seed 1 -json >"$WORK/cluster.json"
stopall

# Slow-peer hedging: node 3 stands in for a degraded machine
# (-debug-delay). All load enters node 1; requests node 3 owns either
# wait out the delay (hedging off) or race a hedge to the next ring
# successor (hedging on). The small-mesh plan mix keeps compute out of
# the latencies so the delta is the routing policy itself, and -cache 2
# keeps results from sticking at the entry node so requests forward —
# and hedge — for the whole run instead of only during warmup.
hedge_run() { # <hedge-flag> <out>
  boot "$WORK/h1.log" -addr 127.0.0.1:$P1 -self "$U1" -peers "$U2,$U3" -hedge-after "$1" -cache 2
  boot "$WORK/h2.log" -addr 127.0.0.1:$P2 -self "$U2" -peers "$U1,$U3" -hedge-after "$1" -cache 2
  boot "$WORK/h3.log" -addr 127.0.0.1:$P3 -self "$U3" -peers "$U1,$U2" -hedge-after "$1" -cache 2 -debug-delay 150ms
  waiturl "$WORK/h1.log" >/dev/null; waiturl "$WORK/h2.log" >/dev/null; waiturl "$WORK/h3.log" >/dev/null
  "$SYNCLOAD" -url "$U1" -qps "$HEDGE_QPS" -duration "$HEDGE_DUR" -mix plan=1 \
    -variants 8 -seed 1 -json >"$2"
  # Scrape node 1's hedge counters before tearing the cluster down.
  curl -sf "$U1/metrics" >"$2.metrics" || echo '{}' >"$2.metrics"
  stopall
}
echo "== scenario 3a: slow peer, hedging off" >&2
hedge_run -1s "$WORK/hedge_off.json"
echo "== scenario 3b: slow peer, hedge after 30ms" >&2
hedge_run 30ms "$WORK/hedge_on.json"

python3 - "$WORK" "$OUT" <<'PY'
import json, sys
work, out = sys.argv[1], sys.argv[2]
def load(p):
    with open(p) as f: return json.load(f)
single  = load(f"{work}/single.json")
cluster = load(f"{work}/cluster.json")
hoff    = load(f"{work}/hedge_off.json")
hon     = load(f"{work}/hedge_on.json")
hon_m   = load(f"{work}/hedge_on.json.metrics")

gain = round(cluster["achieved_qps"] / single["achieved_qps"], 2)
builds = sum(n["kernel_cache_misses"] for n in cluster["nodes"])
fills  = sum(n["cluster_cache_fills"] for n in cluster["nodes"])
# 20 mesh sides x 2 trees: every recipe the -variants 24 analyze pool names.
recipes = 40
doc = {
    "title": "syncd cluster: 3 nodes vs 1 on the kernel-heavy analyze mix, plus slow-peer hedging",
    "generated_by": "scripts/cluster_bench.sh",
    "config": {
        "kernel_cache": 24, "result_cache": 4, "variants": 24,
        "distinct_kernel_recipes": recipes,
        "mix": "analyze=1", "hedge_mix": "plan=1",
        "slow_peer_debug_delay_ms": 150, "hedge_after_ms": 30,
    },
    "single_node": single,
    "cluster_3node": cluster,
    "hedge_slow_peer": {"hedge_off": hoff, "hedge_on": hon},
    "summary": {
        "single_achieved_qps": single["achieved_qps"],
        "cluster_achieved_qps": cluster["achieved_qps"],
        "throughput_gain": gain,
        "cluster_kernel_builds": builds,
        "distinct_kernel_recipes": recipes,
        "cluster_cache_fills": fills,
        "hedge_off_p99_ms": hoff["overall"]["p99_ms"],
        "hedge_on_p99_ms": hon["overall"]["p99_ms"],
        "hedges_sent": hon_m.get("cluster_hedge_total", 0),
        "hedge_wins": hon_m.get("cluster_hedge_wins_total", 0),
    },
}
ok = True
if gain < 2.0:
    print(f"GATE FAIL: throughput gain {gain} < 2.0", file=sys.stderr); ok = False
if builds != recipes:
    print(f"GATE FAIL: {builds} kernel builds cluster-wide, want exactly {recipes}", file=sys.stderr); ok = False
if fills == 0:
    print("GATE FAIL: no cross-peer cache fills", file=sys.stderr); ok = False
if single["errors"] or cluster["errors"] or hoff["errors"] or hon["errors"]:
    print("GATE FAIL: errors in a scenario", file=sys.stderr); ok = False
if hon["overall"]["p99_ms"] >= hoff["overall"]["p99_ms"]:
    print(f"GATE FAIL: hedging did not improve p99 "
          f"({hon['overall']['p99_ms']} vs {hoff['overall']['p99_ms']})", file=sys.stderr); ok = False
doc["summary"]["gates_passed"] = ok
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}: gain {gain}x, {builds}/{recipes} kernel builds, "
      f"p99 {hoff['overall']['p99_ms']}ms -> {hon['overall']['p99_ms']}ms hedged")
sys.exit(0 if ok else 1)
PY
