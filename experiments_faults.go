package vlsisync

// Fault-sweep experiment (E16): the Section VI robustness story made
// quantitative. The paper argues the hybrid scheme degrades gracefully —
// a slow or failed handshake only postpones firings — and the self-timed
// network similarly absorbs transfer faults as elastic stalls. E16
// injects dropped, delayed, and metastability-stalled handshake messages
// at increasing rates and checks that both execution disciplines stay
// inside their analytical stall envelopes while computing correct
// results.

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/faults"
	"repro/internal/hybrid"
	"repro/internal/report"
	"repro/internal/selftimed"
	"repro/internal/stats"
	"repro/internal/systolic"
)

func init() {
	experiments = append(experiments,
		experiment{"E16", "Section VI robustness: fault-injected handshakes stay bounded", runE16},
	)
}

// lastWaveMakespan returns the latest firing time of the final wave.
func lastWaveMakespan(times [][]float64) float64 {
	var mx float64
	for _, t := range times[len(times)-1] {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// runE16 sweeps a per-message fault rate p over a mesh: every handshake
// message independently risks being dropped (delivered a retransmit
// timeout late), delayed, or stalled by a metastable controller. At each
// rate the hybrid makespan may exceed the clean run's by at most
// waves·WorstMessageExtra, the self-timed makespan by at most the total
// injected delay, and a fault-injected hybrid matrix multiplication must
// still reproduce the ideal product trace.
func runE16(rc *runCtx) (*ExperimentResult, error) {
	n, waves := 8, 60
	if rc.quick {
		n, waves = 4, 24
	}
	tbl := report.NewTable(
		fmt.Sprintf("E16: message-fault sweep on a %d×%d mesh (%d waves; drop=delay=p, metastable=p/4)", n, n, waves),
		"p", "faults", "hybrid stall", "stall bound", "selftimed stall", "elastic bound", "matmul trace")
	g, err := comm.Mesh(n, n)
	if err != nil {
		return nil, err
	}
	hcfg := hybrid.Config{ElementSize: 2, Handshake: 0.5, LocalDistribution: 0.25, CellDelay: 1, HoldDelay: 0.5}
	sys, err := hybrid.New(g, hcfg)
	if err != nil {
		return nil, err
	}
	cleanTimes, err := sys.SimulateHandshake(waves)
	if err != nil {
		return nil, err
	}
	cleanT := lastWaveMakespan(cleanTimes)
	d := selftimed.Delays{Fast: 1, Worst: 3, PWorst: 0.3, Handshake: 0.2}
	cleanST, err := selftimed.RunElastic(g, waves, d, 1, stats.NewRNG(7))
	if err != nil {
		return nil, err
	}
	mm, err := systolic.NewMatMul(randomMatrix(4, 4, 11), randomMatrix(4, 4, 12))
	if err != nil {
		return nil, err
	}
	ideal, err := mm.Machine.RunIdeal(mm.Cycles)
	if err != nil {
		return nil, err
	}
	mmSys, err := hybrid.New(mm.Machine.Graph(), hcfg)
	if err != nil {
		return nil, err
	}
	pass := true
	for i, p := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		fc := faults.Config{
			DropProb: p, RetransmitTimeout: 2,
			DelayProb: p, MaxDelay: 1,
			MetastableProb: p / 4, MetastableStall: 0.5,
		}
		// Each consumer gets a fresh injector (same config, distinct
		// fixed seed) so fault counts stay per-run and rows reproduce at
		// any worker count.
		mkInj := func(seed int64) (*faults.Injector, error) {
			if p == 0 {
				return nil, nil
			}
			return faults.New(fc, seed)
		}
		hInj, err := mkInj(101 + int64(i))
		if err != nil {
			return nil, err
		}
		times, err := sys.SimulateHandshakeFaulty(waves, hInj)
		if err != nil {
			return nil, err
		}
		stall := lastWaveMakespan(times) - cleanT
		bound := float64(waves) * fc.WorstMessageExtra()
		sInj, err := mkInj(202 + int64(i))
		if err != nil {
			return nil, err
		}
		st, err := selftimed.RunElasticFaulty(g, waves, d, 1, stats.NewRNG(7), sInj)
		if err != nil {
			return nil, err
		}
		stStall := st.Makespan - cleanST.Makespan
		elasticBound := sInj.TotalExtra()
		mInj, err := mkInj(303 + int64(i))
		if err != nil {
			return nil, err
		}
		tr, err := mmSys.RunFaulty(mm.Machine, mm.Cycles, mInj)
		if err != nil {
			return nil, err
		}
		traceOK := tr.Equal(ideal, 1e-9)
		totalFaults := hInj.Counts().Faults() + sInj.Counts().Faults() + mInj.Counts().Faults()
		verdict := "ok"
		if !traceOK {
			verdict = "CORRUPT"
		}
		tbl.AddRow(p, totalFaults, stall, bound, stStall, elasticBound, verdict)
		if stall < -1e-9 || stall > bound+1e-9 {
			pass = false
		}
		if stStall < -1e-9 || stStall > elasticBound+1e-9 {
			pass = false
		}
		if !traceOK {
			pass = false
		}
		if p == 0 && (stall != 0 || stStall != 0 || totalFaults != 0) {
			pass = false
		}
		if p > 0 && totalFaults == 0 {
			pass = false // the sweep must actually exercise fault paths
		}
	}
	return &ExperimentResult{
		ID:    "E16",
		Title: "Section VI robustness: fault-injected handshakes stay bounded",
		PaperClaim: "The hybrid scheme has no synchronization failure to " +
			"fear from slow elements: an element that is not ready simply " +
			"withholds its done signal, postponing — never corrupting — the " +
			"next wave; the self-timed network likewise absorbs transfer " +
			"faults elastically.",
		Finding: "Across drop/delay/metastability rates up to 0.4 per " +
			"message, the hybrid makespan stays within waves·worst-extra of " +
			"the clean run, the self-timed makespan within the total " +
			"injected delay, and fault-injected matrix multiplication still " +
			"reproduces the ideal trace — faults cost time, never " +
			"correctness.",
		Pass:  pass,
		Table: tbl,
	}, nil
}

// randomMatrix builds a deterministic pseudo-random matrix for the
// correctness probe.
func randomMatrix(rows, cols int, seed int64) systolic.Matrix {
	rng := stats.NewRNG(seed)
	m := systolic.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Uniform(-2, 2))
		}
	}
	return m
}
